//! Continuous paths (paper §III-A, Definition 1).
//!
//! A path is the *actual* movement of an object — a continuous function
//! `f: T → L`. We model it as a piecewise-linear curve through timestamped
//! waypoints (which may repeat a location to encode dwelling). Trajectories
//! are produced by sampling a path at chosen times, which is exactly how
//! the evaluation constructs ground truth.

use crate::{TrajPoint, Trajectory, TrajectoryError};
use sts_geo::Point;

/// A continuous piecewise-linear movement through timestamped waypoints.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    waypoints: Vec<TrajPoint>,
}

impl Path {
    /// Builds a path from waypoints. Requirements are slightly weaker than
    /// for [`Trajectory`]: timestamps must be *non-decreasing* (equal
    /// consecutive timestamps are collapsed) and at least one waypoint
    /// must exist.
    pub fn new(mut waypoints: Vec<TrajPoint>) -> Result<Self, TrajectoryError> {
        if waypoints.is_empty() {
            return Err(TrajectoryError::Empty);
        }
        for (i, p) in waypoints.iter().enumerate() {
            if !p.loc.is_finite() || !p.t.is_finite() {
                return Err(TrajectoryError::NonFinite { index: i });
            }
            if i > 0 && waypoints[i - 1].t > p.t {
                return Err(TrajectoryError::NonMonotonicTime { index: i });
            }
        }
        // Collapse duplicate timestamps, keeping the last location.
        waypoints.dedup_by(|b, a| {
            if a.t == b.t {
                a.loc = b.loc;
                true
            } else {
                false
            }
        });
        Ok(Path { waypoints })
    }

    /// The waypoints.
    #[inline]
    pub fn waypoints(&self) -> &[TrajPoint] {
        &self.waypoints
    }

    /// Start time of the path.
    #[inline]
    pub fn start_time(&self) -> f64 {
        self.waypoints[0].t
    }

    /// End time of the path.
    #[inline]
    pub fn end_time(&self) -> f64 {
        self.waypoints[self.waypoints.len() - 1].t
    }

    /// Duration in seconds.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.end_time() - self.start_time()
    }

    /// The exact position at time `t`, clamping outside the time span to
    /// the endpoints (objects exist at their start/end before/after the
    /// recorded movement).
    pub fn position_at(&self, t: f64) -> Point {
        let pts = &self.waypoints;
        if t <= pts[0].t {
            return pts[0].loc;
        }
        if t >= pts[pts.len() - 1].t {
            return pts[pts.len() - 1].loc;
        }
        let idx = match pts.binary_search_by(|p| p.t.partial_cmp(&t).expect("finite times")) {
            Ok(i) => return pts[i].loc,
            Err(i) => i - 1,
        };
        let a = pts[idx];
        let b = pts[idx + 1];
        let s = (t - a.t) / (b.t - a.t);
        a.loc.lerp(&b.loc, s)
    }

    /// Samples the path at the given times (must be strictly increasing
    /// and within no particular range — clamping applies) producing a
    /// trajectory without noise.
    pub fn sample_at(&self, times: &[f64]) -> Result<Trajectory, TrajectoryError> {
        Trajectory::new(
            times
                .iter()
                .map(|&t| TrajPoint::new(self.position_at(t), t))
                .collect(),
        )
    }

    /// Samples the path every `interval` seconds from its start to its end
    /// (inclusive of the start; the end is included when it falls on the
    /// lattice). Panics if `interval <= 0`.
    pub fn sample_uniform(&self, interval: f64) -> Trajectory {
        assert!(interval > 0.0, "sampling interval must be positive");
        let mut times = Vec::new();
        let mut t = self.start_time();
        let end = self.end_time();
        while t <= end + 1e-9 {
            times.push(t);
            t += interval;
        }
        self.sample_at(&times)
            .expect("uniform sampling produces a valid trajectory")
    }

    /// Total length of the path in meters.
    pub fn length(&self) -> f64 {
        self.waypoints
            .windows(2)
            .map(|w| w[0].loc.distance(&w[1].loc))
            .sum()
    }
}

impl From<Trajectory> for Path {
    /// A trajectory is trivially a (linearly interpolated) path.
    fn from(t: Trajectory) -> Self {
        Path {
            waypoints: t.points().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path() -> Path {
        Path::new(vec![
            TrajPoint::from_xy(0.0, 0.0, 0.0),
            TrajPoint::from_xy(10.0, 0.0, 10.0),
            TrajPoint::from_xy(10.0, 0.0, 20.0), // dwell
            TrajPoint::from_xy(10.0, 10.0, 30.0),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Path::new(vec![]).is_err());
        assert!(Path::new(vec![
            TrajPoint::from_xy(0.0, 0.0, 10.0),
            TrajPoint::from_xy(0.0, 0.0, 5.0)
        ])
        .is_err());
        // Equal timestamps are allowed and collapsed.
        let p = Path::new(vec![
            TrajPoint::from_xy(0.0, 0.0, 0.0),
            TrajPoint::from_xy(5.0, 0.0, 0.0),
            TrajPoint::from_xy(10.0, 0.0, 10.0),
        ])
        .unwrap();
        assert_eq!(p.waypoints().len(), 2);
        assert_eq!(p.position_at(0.0), Point::new(5.0, 0.0));
    }

    #[test]
    fn position_interpolates() {
        let p = path();
        assert_eq!(p.position_at(5.0), Point::new(5.0, 0.0));
        assert_eq!(p.position_at(10.0), Point::new(10.0, 0.0));
        assert_eq!(p.position_at(15.0), Point::new(10.0, 0.0)); // dwelling
        assert_eq!(p.position_at(25.0), Point::new(10.0, 5.0));
    }

    #[test]
    fn position_clamps_outside() {
        let p = path();
        assert_eq!(p.position_at(-5.0), Point::new(0.0, 0.0));
        assert_eq!(p.position_at(99.0), Point::new(10.0, 10.0));
    }

    #[test]
    fn sample_at_times() {
        let p = path();
        let t = p.sample_at(&[0.0, 5.0, 30.0]).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(1).loc, Point::new(5.0, 0.0));
        assert_eq!(t.get(2).loc, Point::new(10.0, 10.0));
    }

    #[test]
    fn sample_uniform_covers_duration() {
        let p = path();
        let t = p.sample_uniform(10.0);
        assert_eq!(t.len(), 4); // t = 0, 10, 20, 30
        assert_eq!(t.start_time(), 0.0);
        assert_eq!(t.end_time(), 30.0);
        let fine = p.sample_uniform(1.0);
        assert_eq!(fine.len(), 31);
    }

    #[test]
    fn length_includes_dwell_as_zero() {
        let p = path();
        assert!((p.length() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn from_trajectory() {
        let t = Trajectory::from_xyt(&[(0.0, 0.0, 0.0), (4.0, 0.0, 4.0)]).unwrap();
        let p = Path::from(t);
        assert_eq!(p.position_at(2.0), Point::new(2.0, 0.0));
    }
}
