//! Location-noise distortion (paper Eq. 14).
//!
//! The evaluation distorts trajectory locations with isotropic Gaussian
//! noise of radius β meters:
//!
//! ```text
//! xᵢ ← xᵢ + β·dx,  dx ~ N(0, 1)
//! yᵢ ← yᵢ + β·dy,  dy ~ N(0, 1)
//! ```
//!
//! Eq. 3 of the paper makes no Gaussian assumption — `P(ℓ | o)` may be
//! *any* noise distribution — so [`add_uniform_noise`] provides a
//! second kernel: displacement uniform over the disc of radius β,
//! letting experiments exercise the arbitrary-noise claim with a
//! bounded-support error model (e.g. quantized GPS or cell-snapping).

use crate::sampling::randn;
use crate::{TrajPoint, Trajectory};
use sts_geo::Point;
use sts_rng::Rng;

/// Returns a copy of `traj` with Eq. 14 noise of radius `beta` meters
/// added to every location. `beta == 0` returns an identical copy.
pub fn add_gaussian_noise<R: Rng + ?Sized>(
    traj: &Trajectory,
    beta: f64,
    rng: &mut R,
) -> Trajectory {
    assert!(beta >= 0.0 && beta.is_finite(), "noise radius must be >= 0");
    if beta == 0.0 {
        return traj.clone();
    }
    let pts: Vec<TrajPoint> = traj
        .points()
        .iter()
        .map(|p| {
            let dx = randn(rng);
            let dy = randn(rng);
            TrajPoint::new(Point::new(p.loc.x + beta * dx, p.loc.y + beta * dy), p.t)
        })
        .collect();
    Trajectory::new(pts).expect("noise preserves timestamps")
}

/// Returns a copy of `traj` with each location displaced by a vector
/// drawn uniformly from the closed disc of radius `beta` meters — the
/// bounded-support counterpart of [`add_gaussian_noise`], exercising
/// Eq. 3's arbitrary-noise-distribution claim. `beta == 0` returns an
/// identical copy. Draws two uniforms per point (`r = β·√u`, `θ = τ·v`)
/// so, like the Gaussian kernel, the consumed RNG stream length depends
/// only on the trajectory length.
pub fn add_uniform_noise<R: Rng + ?Sized>(traj: &Trajectory, beta: f64, rng: &mut R) -> Trajectory {
    assert!(beta >= 0.0 && beta.is_finite(), "noise radius must be >= 0");
    if beta == 0.0 {
        return traj.clone();
    }
    let pts: Vec<TrajPoint> = traj
        .points()
        .iter()
        .map(|p| {
            // √u maps a uniform radius fraction to uniform *area*
            // density over the disc.
            let r = beta * rng.f64().sqrt();
            let theta = std::f64::consts::TAU * rng.f64();
            TrajPoint::new(
                Point::new(p.loc.x + r * theta.cos(), p.loc.y + r * theta.sin()),
                p.t,
            )
        })
        .collect();
    Trajectory::new(pts).expect("noise preserves timestamps")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_rng::Xoshiro256pp;

    fn traj() -> Trajectory {
        Trajectory::new(
            (0..200)
                .map(|i| TrajPoint::from_xy(i as f64, 2.0 * i as f64, i as f64))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn zero_noise_is_identity() {
        let t = traj();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        assert_eq!(add_gaussian_noise(&t, 0.0, &mut rng), t);
    }

    #[test]
    fn timestamps_are_preserved() {
        let t = traj();
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let n = add_gaussian_noise(&t, 5.0, &mut rng);
        assert_eq!(n.len(), t.len());
        for (a, b) in t.points().iter().zip(n.points()) {
            assert_eq!(a.t, b.t);
        }
    }

    #[test]
    fn displacement_scales_with_beta() {
        let t = traj();
        let mean_disp = |beta: f64, seed: u64| -> f64 {
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let n = add_gaussian_noise(&t, beta, &mut rng);
            t.points()
                .iter()
                .zip(n.points())
                .map(|(a, b)| a.loc.distance(&b.loc))
                .sum::<f64>()
                / t.len() as f64
        };
        let d2 = mean_disp(2.0, 3);
        let d20 = mean_disp(20.0, 3);
        // E[‖(dx,dy)‖]·β = β·√(π/2) ≈ 1.2533 β
        assert!((d2 - 2.0 * 1.2533).abs() < 0.3, "{d2}");
        assert!((d20 / d2 - 10.0).abs() < 0.5);
    }

    #[test]
    fn deterministic_per_seed() {
        let t = traj();
        let a = add_gaussian_noise(&t, 4.0, &mut Xoshiro256pp::seed_from_u64(9));
        let b = add_gaussian_noise(&t, 4.0, &mut Xoshiro256pp::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn negative_beta_panics() {
        let t = traj();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let _ = add_gaussian_noise(&t, -1.0, &mut rng);
    }

    #[test]
    fn uniform_noise_is_bounded_by_beta() {
        let t = traj();
        let beta = 7.5;
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let n = add_uniform_noise(&t, beta, &mut rng);
        assert_eq!(n.len(), t.len());
        let mut max_disp = 0.0f64;
        for (a, b) in t.points().iter().zip(n.points()) {
            assert_eq!(a.t, b.t);
            max_disp = max_disp.max(a.loc.distance(&b.loc));
        }
        // Bounded support — the property the Gaussian kernel lacks.
        assert!(max_disp <= beta + 1e-9, "{max_disp}");
        // And not degenerate: with 200 points some displacement should
        // land in the outer half of the disc.
        assert!(max_disp > beta * 0.5, "{max_disp}");
    }

    #[test]
    fn uniform_noise_zero_beta_is_identity_and_seeds_are_deterministic() {
        let t = traj();
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        assert_eq!(add_uniform_noise(&t, 0.0, &mut rng), t);
        let a = add_uniform_noise(&t, 4.0, &mut Xoshiro256pp::seed_from_u64(9));
        let b = add_uniform_noise(&t, 4.0, &mut Xoshiro256pp::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_noise_golden_values() {
        // Pinned first-point output for seed 42, β = 3: any change to
        // the sampling order (√u radius then τ·v angle) or the RNG
        // stream shows up as a bit-level diff here.
        let t = Trajectory::new(vec![
            TrajPoint::from_xy(10.0, 20.0, 0.0),
            TrajPoint::from_xy(13.0, 24.0, 1.0),
        ])
        .unwrap();
        let n = add_uniform_noise(&t, 3.0, &mut Xoshiro256pp::seed_from_u64(42));
        let got: Vec<u64> = n
            .points()
            .iter()
            .flat_map(|p| [p.loc.x.to_bits(), p.loc.y.to_bits()])
            .collect();
        let want = [
            4621180462941806734u64, // x₀ ≈ 8.8655
            4627014579315159187u64, // y₀ ≈ 22.4580
            4623001684755746550u64, // x₁ ≈ 12.1007
            4626650188289757871u64, // y₁ ≈ 21.1634
        ];
        assert_eq!(got, want, "{:?}", n.points());
    }

    #[test]
    #[should_panic]
    fn uniform_negative_beta_panics() {
        let t = traj();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let _ = add_uniform_noise(&t, -1.0, &mut rng);
    }
}
