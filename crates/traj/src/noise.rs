//! Location-noise distortion (paper Eq. 14).
//!
//! The evaluation distorts trajectory locations with isotropic Gaussian
//! noise of radius β meters:
//!
//! ```text
//! xᵢ ← xᵢ + β·dx,  dx ~ N(0, 1)
//! yᵢ ← yᵢ + β·dy,  dy ~ N(0, 1)
//! ```

use crate::sampling::randn;
use crate::{TrajPoint, Trajectory};
use sts_geo::Point;
use sts_rng::Rng;

/// Returns a copy of `traj` with Eq. 14 noise of radius `beta` meters
/// added to every location. `beta == 0` returns an identical copy.
pub fn add_gaussian_noise<R: Rng + ?Sized>(
    traj: &Trajectory,
    beta: f64,
    rng: &mut R,
) -> Trajectory {
    assert!(beta >= 0.0 && beta.is_finite(), "noise radius must be >= 0");
    if beta == 0.0 {
        return traj.clone();
    }
    let pts: Vec<TrajPoint> = traj
        .points()
        .iter()
        .map(|p| {
            let dx = randn(rng);
            let dy = randn(rng);
            TrajPoint::new(Point::new(p.loc.x + beta * dx, p.loc.y + beta * dy), p.t)
        })
        .collect();
    Trajectory::new(pts).expect("noise preserves timestamps")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sts_rng::Xoshiro256pp;

    fn traj() -> Trajectory {
        Trajectory::new(
            (0..200)
                .map(|i| TrajPoint::from_xy(i as f64, 2.0 * i as f64, i as f64))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn zero_noise_is_identity() {
        let t = traj();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        assert_eq!(add_gaussian_noise(&t, 0.0, &mut rng), t);
    }

    #[test]
    fn timestamps_are_preserved() {
        let t = traj();
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let n = add_gaussian_noise(&t, 5.0, &mut rng);
        assert_eq!(n.len(), t.len());
        for (a, b) in t.points().iter().zip(n.points()) {
            assert_eq!(a.t, b.t);
        }
    }

    #[test]
    fn displacement_scales_with_beta() {
        let t = traj();
        let mean_disp = |beta: f64, seed: u64| -> f64 {
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let n = add_gaussian_noise(&t, beta, &mut rng);
            t.points()
                .iter()
                .zip(n.points())
                .map(|(a, b)| a.loc.distance(&b.loc))
                .sum::<f64>()
                / t.len() as f64
        };
        let d2 = mean_disp(2.0, 3);
        let d20 = mean_disp(20.0, 3);
        // E[‖(dx,dy)‖]·β = β·√(π/2) ≈ 1.2533 β
        assert!((d2 - 2.0 * 1.2533).abs() < 0.3, "{d2}");
        assert!((d20 / d2 - 10.0).abs() < 0.5);
    }

    #[test]
    fn deterministic_per_seed() {
        let t = traj();
        let a = add_gaussian_noise(&t, 4.0, &mut Xoshiro256pp::seed_from_u64(9));
        let b = add_gaussian_noise(&t, 4.0, &mut Xoshiro256pp::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn negative_beta_panics() {
        let t = traj();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let _ = add_gaussian_noise(&t, -1.0, &mut rng);
    }
}
