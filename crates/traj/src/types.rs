//! Trajectory types (paper §III-A, Definition 2).

use std::fmt;
use sts_geo::{BoundingBox, Point};

/// One observation of a moving object: a location and its timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajPoint {
    /// Observed location in the local metric frame (meters).
    pub loc: Point,
    /// Timestamp in seconds.
    pub t: f64,
}

impl TrajPoint {
    /// Creates an observation.
    #[inline]
    pub const fn new(loc: Point, t: f64) -> Self {
        TrajPoint { loc, t }
    }

    /// Convenience constructor from raw coordinates.
    #[inline]
    pub const fn from_xy(x: f64, y: f64, t: f64) -> Self {
        TrajPoint {
            loc: Point::new(x, y),
            t,
        }
    }
}

/// Errors constructing a [`Trajectory`].
#[derive(Debug, Clone, PartialEq)]
pub enum TrajectoryError {
    /// A trajectory must contain at least one observation.
    Empty,
    /// Timestamps must be strictly increasing; the offending index is the
    /// later of the two.
    NonMonotonicTime {
        /// Index of the offending observation.
        index: usize,
    },
    /// A coordinate or timestamp was NaN or infinite.
    NonFinite {
        /// Index of the offending observation.
        index: usize,
    },
}

impl fmt::Display for TrajectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrajectoryError::Empty => write!(f, "trajectory must not be empty"),
            TrajectoryError::NonMonotonicTime { index } => {
                write!(
                    f,
                    "timestamps must strictly increase (violated at index {index})"
                )
            }
            TrajectoryError::NonFinite { index } => {
                write!(f, "non-finite coordinate or timestamp at index {index}")
            }
        }
    }
}

impl std::error::Error for TrajectoryError {}

/// A trajectory `Tra = {(ℓ1,t1) … (ℓn,tn)}`: a time-ordered sequence of
/// observed locations sampled from an underlying continuous path.
///
/// Invariants (validated at construction):
/// * non-empty;
/// * strictly increasing timestamps;
/// * all coordinates and timestamps finite.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    points: Vec<TrajPoint>,
}

impl Trajectory {
    /// Builds a trajectory, validating the invariants.
    pub fn new(points: Vec<TrajPoint>) -> Result<Self, TrajectoryError> {
        if points.is_empty() {
            return Err(TrajectoryError::Empty);
        }
        for (i, p) in points.iter().enumerate() {
            if !p.loc.is_finite() || !p.t.is_finite() {
                return Err(TrajectoryError::NonFinite { index: i });
            }
            if i > 0 && points[i - 1].t >= p.t {
                return Err(TrajectoryError::NonMonotonicTime { index: i });
            }
        }
        Ok(Trajectory { points })
    }

    /// Builds a trajectory from `(x, y, t)` triples.
    pub fn from_xyt(xyt: &[(f64, f64, f64)]) -> Result<Self, TrajectoryError> {
        Self::new(
            xyt.iter()
                .map(|&(x, y, t)| TrajPoint::from_xy(x, y, t))
                .collect(),
        )
    }

    /// The observations, in time order.
    #[inline]
    pub fn points(&self) -> &[TrajPoint] {
        &self.points
    }

    /// Number of observations `|Tra|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always `false` — trajectories are non-empty by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// First observation time `t1`.
    #[inline]
    pub fn start_time(&self) -> f64 {
        self.points[0].t
    }

    /// Last observation time `tn`.
    #[inline]
    pub fn end_time(&self) -> f64 {
        self.points[self.points.len() - 1].t
    }

    /// Duration `tn − t1` in seconds (zero for a single observation).
    #[inline]
    pub fn duration(&self) -> f64 {
        self.end_time() - self.start_time()
    }

    /// The i-th observation.
    #[inline]
    pub fn get(&self, i: usize) -> TrajPoint {
        self.points[i]
    }

    /// Iterates over the timestamps.
    pub fn timestamps(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|p| p.t)
    }

    /// Iterates over the locations.
    pub fn locations(&self) -> impl Iterator<Item = Point> + '_ {
        self.points.iter().map(|p| p.loc)
    }

    /// Index of the last observation with `t_i <= t`, or `None` when `t`
    /// precedes the trajectory. Binary search: `O(log n)`.
    pub fn index_at_or_before(&self, t: f64) -> Option<usize> {
        // Negated comparison: a NaN query time precedes nothing and
        // returns `None` instead of corrupting the binary search.
        if !(t >= self.start_time()) {
            return None;
        }
        // Timestamps are finite by invariant, so total_cmp agrees with
        // the numeric order while never being able to panic.
        match self.points.binary_search_by(|p| p.t.total_cmp(&t)) {
            Ok(i) => Some(i),
            Err(i) => Some(i - 1),
        }
    }

    /// The pair of observations bracketing `t`
    /// (`t_i <= t <= t_{i+1}`), or `None` when `t` is outside the
    /// trajectory's time span. When `t` hits an observation exactly, that
    /// observation is returned as both ends.
    pub fn bracketing(&self, t: f64) -> Option<(TrajPoint, TrajPoint)> {
        // Negated form so a NaN query time yields `None`, not a panic.
        if !(t >= self.start_time() && t <= self.end_time()) {
            return None;
        }
        let i = self.index_at_or_before(t)?;
        if self.points[i].t == t {
            return Some((self.points[i], self.points[i]));
        }
        Some((self.points[i], self.points[i + 1]))
    }

    /// `true` when some observation has exactly timestamp `t`.
    pub fn observed_at(&self, t: f64) -> bool {
        self.index_at_or_before(t)
            .map(|i| self.points[i].t == t)
            .unwrap_or(false)
    }

    /// The observation speeds between consecutive points, in m/s —
    /// the paper's speed sample set `S` (§IV-B). Pairs with zero time
    /// delta are impossible by the strict-monotonicity invariant.
    /// Returns an empty vector for single-point trajectories.
    pub fn speed_samples(&self) -> Vec<f64> {
        self.points
            .windows(2)
            .map(|w| w[0].loc.distance(&w[1].loc) / (w[1].t - w[0].t))
            .collect()
    }

    /// Total travelled distance along the observation polyline, meters.
    pub fn travelled_distance(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].loc.distance(&w[1].loc))
            .sum()
    }

    /// Bounding box of the observed locations.
    pub fn bounding_box(&self) -> BoundingBox {
        BoundingBox::from_points(self.points.iter().map(|p| &p.loc))
            .expect("trajectory is non-empty")
    }

    /// Sub-trajectory keeping the observations at `indices` (must be
    /// strictly increasing). Returns `None` when `indices` is empty.
    pub fn subsequence(&self, indices: &[usize]) -> Option<Trajectory> {
        if indices.is_empty() {
            return None;
        }
        let pts: Vec<TrajPoint> = indices.iter().map(|&i| self.points[i]).collect();
        Some(Trajectory::new(pts).expect("subsequence preserves invariants"))
    }

    /// The merged, time-sorted list of timestamps of two trajectories —
    /// the evaluation points of the STS measure (§III-B). Duplicates are
    /// kept (each trajectory contributes its own co-location term in
    /// Eq. 10).
    pub fn merged_timestamps(&self, other: &Trajectory) -> Vec<f64> {
        let mut ts: Vec<f64> = self.timestamps().chain(other.timestamps()).collect();
        ts.sort_by(f64::total_cmp);
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj() -> Trajectory {
        Trajectory::from_xyt(&[
            (0.0, 0.0, 0.0),
            (10.0, 0.0, 10.0),
            (10.0, 20.0, 20.0),
            (30.0, 20.0, 40.0),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert_eq!(Trajectory::new(vec![]), Err(TrajectoryError::Empty));
        assert_eq!(
            Trajectory::from_xyt(&[(0.0, 0.0, 5.0), (1.0, 0.0, 5.0)]),
            Err(TrajectoryError::NonMonotonicTime { index: 1 })
        );
        assert_eq!(
            Trajectory::from_xyt(&[(0.0, 0.0, 5.0), (1.0, 0.0, 1.0)]),
            Err(TrajectoryError::NonMonotonicTime { index: 1 })
        );
        assert_eq!(
            Trajectory::from_xyt(&[(f64::NAN, 0.0, 0.0)]),
            Err(TrajectoryError::NonFinite { index: 0 })
        );
        assert_eq!(
            Trajectory::from_xyt(&[(0.0, 0.0, 0.0), (1.0, 0.0, f64::INFINITY)]),
            Err(TrajectoryError::NonFinite { index: 1 })
        );
    }

    #[test]
    fn basic_accessors() {
        let t = traj();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.start_time(), 0.0);
        assert_eq!(t.end_time(), 40.0);
        assert_eq!(t.duration(), 40.0);
        assert_eq!(t.get(1).loc, Point::new(10.0, 0.0));
    }

    #[test]
    fn index_at_or_before() {
        let t = traj();
        assert_eq!(t.index_at_or_before(-1.0), None);
        assert_eq!(t.index_at_or_before(0.0), Some(0));
        assert_eq!(t.index_at_or_before(5.0), Some(0));
        assert_eq!(t.index_at_or_before(10.0), Some(1));
        assert_eq!(t.index_at_or_before(39.9), Some(2));
        assert_eq!(t.index_at_or_before(40.0), Some(3));
        assert_eq!(t.index_at_or_before(100.0), Some(3));
    }

    #[test]
    fn bracketing() {
        let t = traj();
        assert_eq!(t.bracketing(-0.1), None);
        assert_eq!(t.bracketing(40.1), None);
        let (a, b) = t.bracketing(15.0).unwrap();
        assert_eq!(a.t, 10.0);
        assert_eq!(b.t, 20.0);
        let (a, b) = t.bracketing(10.0).unwrap();
        assert_eq!(a.t, 10.0);
        assert_eq!(b.t, 10.0);
        let (a, b) = t.bracketing(0.0).unwrap();
        assert_eq!((a.t, b.t), (0.0, 0.0));
    }

    #[test]
    fn observed_at() {
        let t = traj();
        assert!(t.observed_at(10.0));
        assert!(!t.observed_at(10.5));
        assert!(!t.observed_at(-3.0));
    }

    #[test]
    fn speed_samples() {
        let t = traj();
        let s = t.speed_samples();
        assert_eq!(s.len(), 3);
        assert!((s[0] - 1.0).abs() < 1e-12); // 10 m / 10 s
        assert!((s[1] - 2.0).abs() < 1e-12); // 20 m / 10 s
        assert!((s[2] - 1.0).abs() < 1e-12); // 20 m / 20 s
        let single = Trajectory::from_xyt(&[(0.0, 0.0, 0.0)]).unwrap();
        assert!(single.speed_samples().is_empty());
    }

    #[test]
    fn travelled_distance_and_bbox() {
        let t = traj();
        assert!((t.travelled_distance() - 50.0).abs() < 1e-12);
        let bb = t.bounding_box();
        assert_eq!(bb.min(), Point::new(0.0, 0.0));
        assert_eq!(bb.max(), Point::new(30.0, 20.0));
    }

    #[test]
    fn subsequence() {
        let t = traj();
        let sub = t.subsequence(&[0, 2]).unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.get(1).t, 20.0);
        assert!(t.subsequence(&[]).is_none());
    }

    #[test]
    fn merged_timestamps_sorted_with_duplicates() {
        let a = Trajectory::from_xyt(&[(0.0, 0.0, 0.0), (0.0, 0.0, 10.0)]).unwrap();
        let b = Trajectory::from_xyt(&[(0.0, 0.0, 5.0), (0.0, 0.0, 10.0)]).unwrap();
        let m = a.merged_timestamps(&b);
        assert_eq!(m, vec![0.0, 5.0, 10.0, 10.0]);
    }
}
