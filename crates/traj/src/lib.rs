#![warn(missing_docs)]
//! # sts-traj — trajectory substrate
//!
//! Trajectory and path types (paper §III Definitions 1–2), the sampling
//! and noise processes used by the evaluation (§VI), plain-text I/O, and
//! the synthetic workload generators substituting for the paper's Porto
//! taxi and shopping-mall datasets (see `DESIGN.md` §2 for the
//! substitution rationale).
//!
//! * [`Trajectory`] — a time-ordered sequence of `(location, timestamp)`
//!   samples with validated invariants;
//! * [`Path`] — the continuous ground-truth movement, a piecewise-linear
//!   function of time that trajectories are sampled from;
//! * [`sampling`] — Bernoulli down-sampling, the alternate odd/even split
//!   of Fig. 3, uniform and Poisson sampling of paths;
//! * [`noise`] — the Gaussian location-noise distortion of Eq. 14;
//! * [`repair`] — degraded-mode repair of corrupted raw point streams
//!   (drop / split / clamp policies with a per-stream report);
//! * [`generators`] — seeded road-network taxi and mall pedestrian
//!   simulators;
//! * [`dataset`] — dataset filtering and the paired D(1)/D(2)
//!   construction used by the trajectory-matching task.

pub mod dataset;
pub mod generators;
pub mod io;
pub mod noise;
pub mod path;
pub mod repair;
pub mod sampling;
pub mod simplify;
pub mod stay_points;
mod types;

pub use dataset::{Dataset, MatchingPairs};
pub use path::Path;
pub use repair::{RepairConfig, RepairOutcome, RepairPolicy, RepairReport};
pub use types::{TrajPoint, Trajectory, TrajectoryError};

/// The minimum trajectory length the paper keeps for evaluation ("we
/// removed trajectories the length of which was less than 20", §VI-A).
pub const MIN_EVAL_LEN: usize = 20;
