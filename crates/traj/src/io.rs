//! Plain-text trajectory serialization.
//!
//! A deliberately simple line-based format (no external format crates):
//!
//! ```text
//! # optional comments
//! traj <n>
//! <x> <y> <t>     (n lines)
//! ```
//!
//! Used by the examples to persist generated workloads and by users to
//! bring their own data.

use crate::{TrajPoint, Trajectory, TrajectoryError};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Errors reading the trajectory text format.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number of the malformed line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// A syntactically valid trajectory violating [`Trajectory`]
    /// invariants.
    Invalid {
        /// 1-based line number where the trajectory record ends.
        line: usize,
        /// The violated invariant.
        source: TrajectoryError,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "I/O error: {e}"),
            ReadError::Parse { line, message } => write!(f, "line {line}: {message}"),
            ReadError::Invalid { line, source } => {
                write!(f, "trajectory ending at line {line}: {source}")
            }
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Writes trajectories in the text format.
pub fn write_trajectories<W: Write>(w: &mut W, trajectories: &[Trajectory]) -> io::Result<()> {
    for t in trajectories {
        writeln!(w, "traj {}", t.len())?;
        for p in t.points() {
            writeln!(w, "{} {} {}", p.loc.x, p.loc.y, p.t)?;
        }
    }
    Ok(())
}

/// Reads trajectories in the text format. Blank lines and `#` comments
/// are ignored between records.
pub fn read_trajectories<R: BufRead>(r: &mut R) -> Result<Vec<Trajectory>, ReadError> {
    let mut out = Vec::new();
    let mut lines = r.lines().enumerate();
    while let Some((idx, line)) = lines.next() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(count_str) = line.strip_prefix("traj ") else {
            return Err(ReadError::Parse {
                line: lineno,
                message: format!("expected `traj <n>`, got `{line}`"),
            });
        };
        let n: usize = count_str.trim().parse().map_err(|_| ReadError::Parse {
            line: lineno,
            message: format!("bad point count `{count_str}`"),
        })?;
        let mut pts = Vec::with_capacity(n);
        let mut last_line = lineno;
        while pts.len() < n {
            let Some((idx, line)) = lines.next() else {
                return Err(ReadError::Parse {
                    line: last_line,
                    message: format!("unexpected EOF: expected {n} points, got {}", pts.len()),
                });
            };
            last_line = idx + 1;
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split_whitespace();
            let mut next_f64 = |name: &str| -> Result<f64, ReadError> {
                fields
                    .next()
                    .ok_or_else(|| ReadError::Parse {
                        line: last_line,
                        message: format!("missing {name}"),
                    })?
                    .parse()
                    .map_err(|_| ReadError::Parse {
                        line: last_line,
                        message: format!("bad {name}"),
                    })
            };
            let x = next_f64("x")?;
            let y = next_f64("y")?;
            let t = next_f64("t")?;
            pts.push(TrajPoint::from_xy(x, y, t));
        }
        out.push(Trajectory::new(pts).map_err(|source| ReadError::Invalid {
            line: last_line,
            source,
        })?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> Vec<Trajectory> {
        vec![
            Trajectory::from_xyt(&[(0.0, 1.0, 0.0), (2.5, -3.0, 1.5)]).unwrap(),
            Trajectory::from_xyt(&[(10.0, 10.0, 100.0)]).unwrap(),
        ]
    }

    #[test]
    fn roundtrip() {
        let trajs = sample();
        let mut buf = Vec::new();
        write_trajectories(&mut buf, &trajs).unwrap();
        let parsed = read_trajectories(&mut Cursor::new(buf)).unwrap();
        assert_eq!(parsed, trajs);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "# header\n\ntraj 2\n0 0 0\n# midway comment\n1 1 1\n\n";
        let parsed = read_trajectories(&mut Cursor::new(text)).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].len(), 2);
    }

    #[test]
    fn parse_errors_are_reported_with_lines() {
        let bad_header = "hello\n";
        match read_trajectories(&mut Cursor::new(bad_header)) {
            Err(ReadError::Parse { line: 1, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        let bad_point = "traj 1\n0 zero 0\n";
        match read_trajectories(&mut Cursor::new(bad_point)) {
            Err(ReadError::Parse { line: 2, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        let truncated = "traj 3\n0 0 0\n";
        assert!(matches!(
            read_trajectories(&mut Cursor::new(truncated)),
            Err(ReadError::Parse { .. })
        ));
    }

    #[test]
    fn invariant_violations_are_reported() {
        let non_monotone = "traj 2\n0 0 5\n1 1 1\n";
        assert!(matches!(
            read_trajectories(&mut Cursor::new(non_monotone)),
            Err(ReadError::Invalid { .. })
        ));
    }

    #[test]
    fn empty_input_is_empty_vec() {
        let parsed = read_trajectories(&mut Cursor::new("")).unwrap();
        assert!(parsed.is_empty());
    }
}
