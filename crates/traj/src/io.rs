//! Plain-text trajectory serialization.
//!
//! A deliberately simple line-based format (no external format crates):
//!
//! ```text
//! # optional comments
//! traj <n>
//! <x> <y> <t>     (n lines)
//! ```
//!
//! Used by the examples to persist generated workloads and by users to
//! bring their own data.

use crate::{TrajPoint, Trajectory, TrajectoryError};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Errors reading the trajectory text format.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number of the malformed line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// A syntactically valid trajectory violating [`Trajectory`]
    /// invariants.
    Invalid {
        /// 1-based line number where the trajectory record ends.
        line: usize,
        /// The violated invariant.
        source: TrajectoryError,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "I/O error: {e}"),
            ReadError::Parse { line, message } => write!(f, "line {line}: {message}"),
            ReadError::Invalid { line, source } => {
                write!(f, "trajectory ending at line {line}: {source}")
            }
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Writes trajectories in the text format.
pub fn write_trajectories<W: Write>(w: &mut W, trajectories: &[Trajectory]) -> io::Result<()> {
    for t in trajectories {
        writeln!(w, "traj {}", t.len())?;
        for p in t.points() {
            writeln!(w, "{} {} {}", p.loc.x, p.loc.y, p.t)?;
        }
    }
    Ok(())
}

/// Reads trajectories in the text format. Blank lines and `#` comments
/// are ignored between records.
pub fn read_trajectories<R: BufRead>(r: &mut R) -> Result<Vec<Trajectory>, ReadError> {
    let mut out = Vec::new();
    let mut lines = r.lines().enumerate();
    while let Some((idx, line)) = lines.next() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(count_str) = line.strip_prefix("traj ") else {
            return Err(ReadError::Parse {
                line: lineno,
                message: format!("expected `traj <n>`, got `{line}`"),
            });
        };
        let n: usize = count_str.trim().parse().map_err(|_| ReadError::Parse {
            line: lineno,
            message: format!("bad point count `{count_str}`"),
        })?;
        // Never trust a declared count for allocation: a corrupted
        // header like `traj 99999999999` must fail with a parse error
        // at EOF, not abort the process in the allocator.
        let mut pts = Vec::with_capacity(n.min(1024));
        let mut last_line = lineno;
        while pts.len() < n {
            let Some((idx, line)) = lines.next() else {
                return Err(ReadError::Parse {
                    line: last_line,
                    message: format!("unexpected EOF: expected {n} points, got {}", pts.len()),
                });
            };
            last_line = idx + 1;
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split_whitespace();
            let mut next_f64 = |name: &str| -> Result<f64, ReadError> {
                fields
                    .next()
                    .ok_or_else(|| ReadError::Parse {
                        line: last_line,
                        message: format!("missing {name}"),
                    })?
                    .parse()
                    .map_err(|_| ReadError::Parse {
                        line: last_line,
                        message: format!("bad {name}"),
                    })
            };
            let x = next_f64("x")?;
            let y = next_f64("y")?;
            let t = next_f64("t")?;
            pts.push(TrajPoint::from_xy(x, y, t));
        }
        out.push(Trajectory::new(pts).map_err(|source| ReadError::Invalid {
            line: last_line,
            source,
        })?);
    }
    Ok(out)
}

/// Result of a lenient read: every record that could be recovered,
/// plus a typed error for every record that could not.
#[derive(Debug, Default)]
pub struct LenientRead {
    /// Records that parsed and satisfied the [`Trajectory`] invariants.
    pub trajectories: Vec<Trajectory>,
    /// One error per failed record (parse failures, truncations,
    /// invariant violations), in file order.
    pub errors: Vec<ReadError>,
    /// The raw point streams of records that parsed (fully or
    /// partially) but violated the trajectory invariants or were
    /// truncated — ready to be fed to [`crate::repair::repair`].
    pub raw_invalid: Vec<Vec<TrajPoint>>,
    /// Total records encountered (headers seen), failed or not.
    pub records: usize,
}

/// Reads the text format leniently: a corrupted record is recorded in
/// [`LenientRead::errors`] (and, when any points were recovered, in
/// [`LenientRead::raw_invalid`]) and the reader resynchronizes at the
/// next `traj` header instead of aborting the file. Invalid UTF-8 is
/// tolerated via lossy decoding, so arbitrary byte-level corruption
/// degrades to per-record errors. Only a real I/O failure returns
/// `Err`.
pub fn read_trajectories_lenient<R: BufRead>(r: &mut R) -> io::Result<LenientRead> {
    // Read raw lines up front with lossy decoding — `BufRead::lines`
    // would abort the whole file on the first invalid UTF-8 byte.
    let mut lines: Vec<String> = Vec::new();
    let mut buf = Vec::new();
    loop {
        buf.clear();
        if r.read_until(b'\n', &mut buf)? == 0 {
            break;
        }
        lines.push(String::from_utf8_lossy(&buf).trim().to_string());
    }

    let mut out = LenientRead::default();
    let mut i = 0;
    let is_header = |s: &str| s.starts_with("traj ");
    while i < lines.len() {
        let line = lines[i].as_str();
        if line.is_empty() || line.starts_with('#') {
            i += 1;
            continue;
        }
        let Some(count_str) = line.strip_prefix("traj ") else {
            // Junk between records: one error for the whole run, then
            // resynchronize at the next header.
            out.errors.push(ReadError::Parse {
                line: i + 1,
                message: format!("expected `traj <n>`, got `{line}`"),
            });
            while i < lines.len() && !is_header(lines[i].as_str()) {
                i += 1;
            }
            continue;
        };
        out.records += 1;
        let header_line = i + 1;
        i += 1;
        let Ok(n) = count_str.trim().parse::<usize>() else {
            out.errors.push(ReadError::Parse {
                line: header_line,
                message: format!("bad point count `{count_str}`"),
            });
            while i < lines.len() && !is_header(lines[i].as_str()) {
                i += 1;
            }
            continue;
        };
        // Collect up to n point lines; stop early at the next header
        // (truncated record) or a malformed point line.
        let mut pts: Vec<TrajPoint> = Vec::with_capacity(n.min(1024));
        let mut record_error: Option<ReadError> = None;
        let mut last_line = header_line;
        while pts.len() < n && i < lines.len() {
            let l = lines[i].as_str();
            if l.is_empty() || l.starts_with('#') {
                i += 1;
                continue;
            }
            if is_header(l) {
                break; // truncated record; the next one starts here
            }
            last_line = i + 1;
            let mut fields = l.split_whitespace().map(str::parse::<f64>);
            match (fields.next(), fields.next(), fields.next()) {
                (Some(Ok(x)), Some(Ok(y)), Some(Ok(t))) => {
                    pts.push(TrajPoint::from_xy(x, y, t));
                    i += 1;
                }
                _ => {
                    record_error = Some(ReadError::Parse {
                        line: last_line,
                        message: format!("bad point line `{l}`"),
                    });
                    i += 1;
                    // Resynchronize: skip the rest of this record.
                    while i < lines.len() && !is_header(lines[i].as_str()) {
                        i += 1;
                    }
                    break;
                }
            }
        }
        if record_error.is_none() && pts.len() < n {
            record_error = Some(ReadError::Parse {
                line: last_line,
                message: format!("truncated record: expected {n} points, got {}", pts.len()),
            });
        }
        if let Some(e) = record_error {
            out.errors.push(e);
            if !pts.is_empty() {
                out.raw_invalid.push(pts);
            }
            continue;
        }
        match Trajectory::new(pts.clone()) {
            Ok(t) => out.trajectories.push(t),
            Err(source) => {
                out.errors.push(ReadError::Invalid {
                    line: last_line,
                    source,
                });
                out.raw_invalid.push(pts);
            }
        }
    }
    sts_obs::static_counter!("traj.io.records_read").add(out.records as u64);
    sts_obs::static_counter!("traj.io.records_salvaged").add(out.trajectories.len() as u64);
    sts_obs::static_counter!("traj.io.records_invalid").add(out.errors.len() as u64);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> Vec<Trajectory> {
        vec![
            Trajectory::from_xyt(&[(0.0, 1.0, 0.0), (2.5, -3.0, 1.5)]).unwrap(),
            Trajectory::from_xyt(&[(10.0, 10.0, 100.0)]).unwrap(),
        ]
    }

    #[test]
    fn roundtrip() {
        let trajs = sample();
        let mut buf = Vec::new();
        write_trajectories(&mut buf, &trajs).unwrap();
        let parsed = read_trajectories(&mut Cursor::new(buf)).unwrap();
        assert_eq!(parsed, trajs);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = "# header\n\ntraj 2\n0 0 0\n# midway comment\n1 1 1\n\n";
        let parsed = read_trajectories(&mut Cursor::new(text)).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].len(), 2);
    }

    #[test]
    fn parse_errors_are_reported_with_lines() {
        let bad_header = "hello\n";
        match read_trajectories(&mut Cursor::new(bad_header)) {
            Err(ReadError::Parse { line: 1, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        let bad_point = "traj 1\n0 zero 0\n";
        match read_trajectories(&mut Cursor::new(bad_point)) {
            Err(ReadError::Parse { line: 2, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        let truncated = "traj 3\n0 0 0\n";
        assert!(matches!(
            read_trajectories(&mut Cursor::new(truncated)),
            Err(ReadError::Parse { .. })
        ));
    }

    #[test]
    fn invariant_violations_are_reported() {
        let non_monotone = "traj 2\n0 0 5\n1 1 1\n";
        assert!(matches!(
            read_trajectories(&mut Cursor::new(non_monotone)),
            Err(ReadError::Invalid { .. })
        ));
    }

    #[test]
    fn empty_input_is_empty_vec() {
        let parsed = read_trajectories(&mut Cursor::new("")).unwrap();
        assert!(parsed.is_empty());
    }

    #[test]
    fn absurd_declared_count_fails_without_allocating() {
        let text = "traj 99999999999999\n0 0 0\n";
        assert!(matches!(
            read_trajectories(&mut Cursor::new(text)),
            Err(ReadError::Parse { .. })
        ));
    }

    #[test]
    fn lenient_matches_strict_on_clean_input() {
        let trajs = sample();
        let mut buf = Vec::new();
        write_trajectories(&mut buf, &trajs).unwrap();
        let lenient = read_trajectories_lenient(&mut Cursor::new(buf)).unwrap();
        assert_eq!(lenient.trajectories, trajs);
        assert!(lenient.errors.is_empty());
        assert!(lenient.raw_invalid.is_empty());
        assert_eq!(lenient.records, trajs.len());
    }

    #[test]
    fn lenient_skips_bad_records_and_keeps_good_ones() {
        let text = "traj 2\n0 0 0\n1 1 1\n\
                    traj 2\n0 zero 0\n1 1 1\n\
                    traj 2\n5 5 5\n6 6 6\n";
        let lenient = read_trajectories_lenient(&mut Cursor::new(text)).unwrap();
        assert_eq!(lenient.trajectories.len(), 2);
        assert_eq!(lenient.errors.len(), 1);
        assert_eq!(lenient.records, 3);
        assert_eq!(lenient.trajectories[1].get(0).t, 5.0);
    }

    #[test]
    fn lenient_collects_invariant_violations_with_raw_points() {
        let text = "traj 2\n0 0 5\n1 1 1\ntraj 2\n0 0 0\n1 1 1\n";
        let lenient = read_trajectories_lenient(&mut Cursor::new(text)).unwrap();
        assert_eq!(lenient.trajectories.len(), 1);
        assert_eq!(lenient.errors.len(), 1);
        assert!(matches!(lenient.errors[0], ReadError::Invalid { .. }));
        assert_eq!(lenient.raw_invalid.len(), 1);
        assert_eq!(lenient.raw_invalid[0].len(), 2);
        assert_eq!(lenient.raw_invalid[0][0].t, 5.0);
    }

    #[test]
    fn lenient_recovers_after_truncated_record() {
        let text = "traj 5\n0 0 0\n1 1 1\ntraj 2\n5 5 5\n6 6 6\n";
        let lenient = read_trajectories_lenient(&mut Cursor::new(text)).unwrap();
        assert_eq!(lenient.trajectories.len(), 1);
        assert_eq!(lenient.trajectories[0].get(0).t, 5.0);
        assert_eq!(lenient.errors.len(), 1);
        // The truncated record's two good points are recoverable.
        assert_eq!(lenient.raw_invalid.len(), 1);
        assert_eq!(lenient.raw_invalid[0].len(), 2);
    }

    #[test]
    fn lenient_tolerates_invalid_utf8_and_junk() {
        let mut bytes = b"traj 2\n0 0 0\n1 1 1\n".to_vec();
        bytes.extend_from_slice(&[0xFF, 0xFE, 0x80, b'\n']);
        bytes.extend_from_slice(b"garbage line\ntraj 2\n2 2 2\n3 3 3\n");
        let lenient = read_trajectories_lenient(&mut Cursor::new(bytes)).unwrap();
        assert_eq!(lenient.trajectories.len(), 2);
        assert!(!lenient.errors.is_empty());
    }

    #[test]
    fn lenient_handles_absurd_count_and_empty_input() {
        let lenient = read_trajectories_lenient(&mut Cursor::new("")).unwrap();
        assert!(lenient.trajectories.is_empty() && lenient.errors.is_empty());
        let text = "traj 99999999999999\n0 0 0\n";
        let lenient = read_trajectories_lenient(&mut Cursor::new(text)).unwrap();
        assert!(lenient.trajectories.is_empty());
        assert_eq!(lenient.errors.len(), 1);
        assert_eq!(lenient.raw_invalid.len(), 1, "partial points recovered");
    }
}
