//! Stay-point detection.
//!
//! A *stay point* is a maximal time window during which the object
//! remains within a small radius — a store visit in the mall workload, a
//! pickup wait in the taxi workload. Stay points are the standard
//! semantic unit of trajectory mining (Zheng, *Trajectory Data Mining*,
//! the paper's ref. [10]) and give the examples a way to explain *where*
//! two trajectories overlap.

use crate::Trajectory;
use sts_geo::Point;

/// A detected stay: the object stayed within `radius` of `center` from
/// `start_time` to `end_time`.
#[derive(Debug, Clone, PartialEq)]
pub struct StayPoint {
    /// Mean location of the contributing observations.
    pub center: Point,
    /// First observation time of the stay.
    pub start_time: f64,
    /// Last observation time of the stay.
    pub end_time: f64,
    /// Number of observations in the stay.
    pub count: usize,
}

impl StayPoint {
    /// Stay duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end_time - self.start_time
    }
}

/// Detects stay points: maximal windows `[i, j]` where every observation
/// lies within `radius` meters of the window's *first* observation and
/// the window lasts at least `min_duration` seconds (the classic
/// Li/Zheng formulation).
pub fn detect_stay_points(traj: &Trajectory, radius: f64, min_duration: f64) -> Vec<StayPoint> {
    assert!(radius > 0.0, "radius must be positive");
    assert!(min_duration >= 0.0, "min duration must be >= 0");
    let pts = traj.points();
    let mut out = Vec::new();
    let mut i = 0;
    while i < pts.len() {
        let anchor = pts[i];
        let mut j = i;
        while j + 1 < pts.len() && anchor.loc.distance(&pts[j + 1].loc) <= radius {
            j += 1;
        }
        let duration = pts[j].t - pts[i].t;
        if j > i && duration >= min_duration {
            let n = (j - i + 1) as f64;
            let mut cx = 0.0;
            let mut cy = 0.0;
            for p in &pts[i..=j] {
                cx += p.loc.x;
                cy += p.loc.y;
            }
            out.push(StayPoint {
                center: Point::new(cx / n, cy / n),
                start_time: pts[i].t,
                end_time: pts[j].t,
                count: j - i + 1,
            });
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Walk, dwell 100 s at (50, 0), walk on.
    fn walk_with_dwell() -> Trajectory {
        let mut pts: Vec<(f64, f64, f64)> = Vec::new();
        for i in 0..6 {
            pts.push((i as f64 * 10.0, 0.0, i as f64 * 10.0)); // 0..50
        }
        for k in 1..=10 {
            // jitter within 2 m of (50, 0)
            let dx = if k % 2 == 0 { 1.0 } else { -1.0 };
            pts.push((50.0 + dx, 0.5, 50.0 + k as f64 * 10.0));
        }
        for i in 1..=5 {
            pts.push((50.0 + i as f64 * 10.0, 0.0, 150.0 + i as f64 * 10.0));
        }
        Trajectory::from_xyt(&pts).unwrap()
    }

    #[test]
    fn detects_the_dwell() {
        let t = walk_with_dwell();
        let stays = detect_stay_points(&t, 5.0, 60.0);
        assert_eq!(stays.len(), 1, "stays: {stays:?}");
        let s = &stays[0];
        assert!(s.center.distance(&Point::new(50.0, 0.3)) < 3.0);
        assert!(s.duration() >= 60.0);
        assert!(s.count >= 8);
    }

    #[test]
    fn no_stays_on_constant_motion() {
        let t = Trajectory::from_xyt(
            &(0..20)
                .map(|i| (i as f64 * 10.0, 0.0, i as f64 * 10.0))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(detect_stay_points(&t, 5.0, 30.0).is_empty());
    }

    #[test]
    fn min_duration_filters_short_pauses() {
        let t = walk_with_dwell();
        assert_eq!(detect_stay_points(&t, 5.0, 60.0).len(), 1);
        assert!(detect_stay_points(&t, 5.0, 500.0).is_empty());
    }

    #[test]
    fn stays_do_not_overlap() {
        let t = walk_with_dwell();
        let stays = detect_stay_points(&t, 5.0, 0.0);
        for w in stays.windows(2) {
            assert!(w[0].end_time < w[1].start_time);
        }
    }

    #[test]
    fn single_point_has_no_stay() {
        let t = Trajectory::from_xyt(&[(0.0, 0.0, 0.0)]).unwrap();
        assert!(detect_stay_points(&t, 5.0, 0.0).is_empty());
    }

    #[test]
    fn mall_generator_produces_stays() {
        use crate::generators::mall;
        let w = mall::generate(&mall::MallConfig {
            n_pedestrians: 3,
            seed: 5,
            ..mall::MallConfig::default()
        });
        // Pedestrians dwell at stores; at least one stay should be
        // observable in at least one trajectory.
        let total: usize = w
            .objects
            .iter()
            .map(|o| detect_stay_points(&o.trajectory, 8.0, 45.0).len())
            .sum();
        assert!(total > 0, "no stays detected in the mall workload");
    }
}
