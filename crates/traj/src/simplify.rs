//! Trajectory simplification (Douglas–Peucker).
//!
//! Real deployments rarely store raw 15-second beacons; they simplify
//! first. Simplification is also a *stress tool* for similarity
//! measures: it is an extreme, structure-aware form of the sporadic
//! sampling the paper studies — points are dropped exactly where linear
//! interpolation is a good model, which flatters interpolation-based
//! baselines and penalizes point-matching ones.

use crate::{TrajPoint, Trajectory};
use sts_geo::Segment;

/// Douglas–Peucker simplification with spatial tolerance `epsilon`
/// (meters): keeps the minimal subset of points such that every dropped
/// point lies within `epsilon` of the kept polyline. Endpoints are
/// always kept. `epsilon <= 0` returns the trajectory unchanged.
pub fn douglas_peucker(traj: &Trajectory, epsilon: f64) -> Trajectory {
    if epsilon <= 0.0 || traj.len() <= 2 {
        return traj.clone();
    }
    let pts = traj.points();
    let mut keep = vec![false; pts.len()];
    keep[0] = true;
    keep[pts.len() - 1] = true;
    // Iterative stack instead of recursion: trajectories can be long.
    let mut stack = vec![(0usize, pts.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let seg = Segment::new(pts[lo].loc, pts[hi].loc);
        let (mut worst_idx, mut worst_d) = (lo, -1.0f64);
        for (i, p) in pts.iter().enumerate().take(hi).skip(lo + 1) {
            let d = seg.distance_to_point(&p.loc);
            if d > worst_d {
                worst_d = d;
                worst_idx = i;
            }
        }
        if worst_d > epsilon {
            keep[worst_idx] = true;
            stack.push((lo, worst_idx));
            stack.push((worst_idx, hi));
        }
    }
    let kept: Vec<TrajPoint> = pts
        .iter()
        .zip(&keep)
        .filter_map(|(p, &k)| k.then_some(*p))
        .collect();
    Trajectory::new(kept).expect("subset keeps time order")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zigzag() -> Trajectory {
        Trajectory::from_xyt(&[
            (0.0, 0.0, 0.0),
            (10.0, 0.2, 1.0),  // nearly collinear
            (20.0, -0.1, 2.0), // nearly collinear
            (30.0, 0.0, 3.0),
            (40.0, 15.0, 4.0), // a real corner
            (50.0, 0.0, 5.0),
        ])
        .unwrap()
    }

    #[test]
    fn drops_near_collinear_points() {
        let t = zigzag();
        let s = douglas_peucker(&t, 1.0);
        assert!(s.len() < t.len());
        // Endpoints survive.
        assert_eq!(s.get(0), t.get(0));
        assert_eq!(s.get(s.len() - 1), t.get(t.len() - 1));
        // The corner at x=40 survives.
        assert!(s.points().iter().any(|p| p.loc.y == 15.0));
    }

    #[test]
    fn zero_epsilon_is_identity() {
        let t = zigzag();
        assert_eq!(douglas_peucker(&t, 0.0), t);
        assert_eq!(douglas_peucker(&t, -1.0), t);
    }

    #[test]
    fn all_dropped_points_are_within_epsilon() {
        let t = zigzag();
        let eps = 1.0;
        let s = douglas_peucker(&t, eps);
        let kept: Vec<_> = s.locations().collect();
        for p in t.points() {
            // Distance from each original point to the simplified
            // polyline must be <= eps.
            let mut best = f64::INFINITY;
            for w in kept.windows(2) {
                best = best.min(Segment::new(w[0], w[1]).distance_to_point(&p.loc));
            }
            assert!(best <= eps + 1e-9, "point {p:?} is {best} m away");
        }
    }

    #[test]
    fn huge_epsilon_keeps_only_endpoints() {
        let t = zigzag();
        let s = douglas_peucker(&t, 1e9);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn short_trajectories_untouched() {
        let two = Trajectory::from_xyt(&[(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]).unwrap();
        assert_eq!(douglas_peucker(&two, 5.0), two);
        let one = Trajectory::from_xyt(&[(0.0, 0.0, 0.0)]).unwrap();
        assert_eq!(douglas_peucker(&one, 5.0), one);
    }

    #[test]
    fn timestamps_preserved_for_kept_points() {
        let t = zigzag();
        let s = douglas_peucker(&t, 1.0);
        for p in s.points() {
            assert!(t.points().iter().any(|q| q == p));
        }
    }
}
