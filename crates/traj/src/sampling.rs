//! Sampling processes over trajectories and paths (paper §VI).
//!
//! The evaluation constructs its datasets with two operations:
//!
//! * the **alternate split** of Fig. 3: a raw trajectory is split into two
//!   sub-trajectories by alternately taking points, simulating the same
//!   object being observed by two different sensing systems;
//! * **down-sampling at a rate** ρ ∈ (0, 1]: keeping a random fraction of
//!   a trajectory's points, simulating low / heterogeneous sampling rates.
//!
//! Additionally, paths can be sampled by a Poisson process (sporadic,
//! asynchronous sensing such as opportunistic WiFi scans) or uniformly
//! (periodic reporting such as the 15-second taxi beacons).

use crate::{Path, Trajectory};
use sts_rng::Rng;

/// Normal deviate via Box–Muller (avoids a dependency on `rand_distr`).
pub fn randn<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        let u2: f64 = rng.random();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Splits a trajectory into two interleaved sub-trajectories
/// (even-indexed points, odd-indexed points) — the ground-truth pair
/// construction of Fig. 3. Requires at least 2 points.
pub fn alternate_split(traj: &Trajectory) -> Option<(Trajectory, Trajectory)> {
    if traj.len() < 2 {
        return None;
    }
    let even: Vec<usize> = (0..traj.len()).step_by(2).collect();
    let odd: Vec<usize> = (1..traj.len()).step_by(2).collect();
    Some((
        traj.subsequence(&even).expect("even half non-empty"),
        traj.subsequence(&odd).expect("odd half non-empty"),
    ))
}

/// Keeps a uniformly random subset of exactly
/// `max(1, round(rate · n))` points (order preserved) — the paper's
/// "sample a sub-trajectory with a sampling rate". `rate` is clamped to
/// `(0, 1]`.
pub fn downsample_fraction<R: Rng + ?Sized>(
    traj: &Trajectory,
    rate: f64,
    rng: &mut R,
) -> Trajectory {
    let rate = rate.clamp(f64::MIN_POSITIVE, 1.0);
    let n = traj.len();
    let keep = ((rate * n as f64).round() as usize).clamp(1, n);
    if keep == n {
        return traj.clone();
    }
    // Partial Fisher–Yates over the index set, then sort the kept ones.
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..keep {
        let j = rng.random_range(i..n);
        idx.swap(i, j);
    }
    let mut kept = idx[..keep].to_vec();
    kept.sort_unstable();
    traj.subsequence(&kept).expect("keep >= 1")
}

/// Bernoulli down-sampling: keeps each point independently with
/// probability `rate`. Returns `None` when everything is dropped.
pub fn downsample_bernoulli<R: Rng + ?Sized>(
    traj: &Trajectory,
    rate: f64,
    rng: &mut R,
) -> Option<Trajectory> {
    let kept: Vec<usize> = (0..traj.len())
        .filter(|_| rng.random::<f64>() < rate)
        .collect();
    traj.subsequence(&kept)
}

/// Keeps every k-th point, starting from the first. `k == 1` clones.
pub fn every_kth(traj: &Trajectory, k: usize) -> Trajectory {
    assert!(k >= 1, "k must be at least 1");
    let idx: Vec<usize> = (0..traj.len()).step_by(k).collect();
    traj.subsequence(&idx).expect("first point always kept")
}

/// Event times of a homogeneous Poisson process on `[start, end]` with
/// the given mean inter-arrival interval (seconds). The start time is
/// always included (the sensing system sees the object appear).
pub fn poisson_times<R: Rng + ?Sized>(
    start: f64,
    end: f64,
    mean_interval: f64,
    rng: &mut R,
) -> Vec<f64> {
    assert!(mean_interval > 0.0, "mean interval must be positive");
    let mut times = vec![start];
    let mut t = start;
    loop {
        // Exponential inter-arrival via inverse CDF.
        let u: f64 = rng.random();
        let u = u.max(f64::MIN_POSITIVE);
        t += -mean_interval * u.ln();
        if t > end {
            break;
        }
        times.push(t);
    }
    times
}

/// Samples a path with a Poisson observation process (sporadic sensing).
pub fn sample_path_poisson<R: Rng + ?Sized>(
    path: &Path,
    mean_interval: f64,
    rng: &mut R,
) -> Trajectory {
    let times = poisson_times(path.start_time(), path.end_time(), mean_interval, rng);
    path.sample_at(&times)
        .expect("strictly increasing Poisson times")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrajPoint;
    use sts_rng::Xoshiro256pp;

    fn traj(n: usize) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| TrajPoint::from_xy(i as f64, 0.0, i as f64))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn alternate_split_interleaves() {
        let t = traj(5);
        let (a, b) = alternate_split(&t).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 2);
        assert_eq!(a.get(0).t, 0.0);
        assert_eq!(a.get(1).t, 2.0);
        assert_eq!(b.get(0).t, 1.0);
        assert_eq!(b.get(1).t, 3.0);
        // Halves are disjoint in time and together cover the original.
        let merged = a.merged_timestamps(&b);
        assert_eq!(merged, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert!(alternate_split(&traj(1)).is_none());
    }

    #[test]
    fn downsample_fraction_sizes() {
        let t = traj(100);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        assert_eq!(downsample_fraction(&t, 1.0, &mut rng).len(), 100);
        assert_eq!(downsample_fraction(&t, 0.5, &mut rng).len(), 50);
        assert_eq!(downsample_fraction(&t, 0.1, &mut rng).len(), 10);
        assert_eq!(downsample_fraction(&t, 0.001, &mut rng).len(), 1);
        // Rates outside (0,1] are clamped.
        assert_eq!(downsample_fraction(&t, 2.0, &mut rng).len(), 100);
    }

    #[test]
    fn downsample_fraction_preserves_order_and_content() {
        let t = traj(50);
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let d = downsample_fraction(&t, 0.3, &mut rng);
        let mut prev = -1.0;
        for p in d.points() {
            assert!(p.t > prev);
            prev = p.t;
            // Every sampled point exists in the original.
            assert!(t.points().iter().any(|q| q.t == p.t && q.loc == p.loc));
        }
    }

    #[test]
    fn downsample_fraction_is_deterministic_per_seed() {
        let t = traj(40);
        let a = downsample_fraction(&t, 0.4, &mut Xoshiro256pp::seed_from_u64(9));
        let b = downsample_fraction(&t, 0.4, &mut Xoshiro256pp::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn downsample_bernoulli_rate_extremes() {
        let t = traj(30);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        assert_eq!(downsample_bernoulli(&t, 1.1, &mut rng).unwrap().len(), 30);
        assert!(downsample_bernoulli(&t, 0.0, &mut rng).is_none());
        let half = downsample_bernoulli(&t, 0.5, &mut rng).unwrap();
        assert!(half.len() > 5 && half.len() < 25);
    }

    #[test]
    fn every_kth_selects_lattice() {
        let t = traj(10);
        let e = every_kth(&t, 3);
        assert_eq!(e.timestamps().collect::<Vec<_>>(), vec![0.0, 3.0, 6.0, 9.0]);
        assert_eq!(every_kth(&t, 1).len(), 10);
    }

    #[test]
    fn poisson_times_properties() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let times = poisson_times(0.0, 10_000.0, 10.0, &mut rng);
        assert_eq!(times[0], 0.0);
        assert!(times.iter().all(|&t| t <= 10_000.0));
        let mut prev = -1.0;
        for &t in &times {
            assert!(t > prev);
            prev = t;
        }
        // Mean interval should be near 10 s (~1000 events).
        let n = times.len() as f64;
        assert!((n - 1000.0).abs() < 120.0, "{n} events");
    }

    #[test]
    fn sample_path_poisson_is_on_path() {
        let path = Path::new(vec![
            TrajPoint::from_xy(0.0, 0.0, 0.0),
            TrajPoint::from_xy(100.0, 0.0, 100.0),
        ])
        .unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let t = sample_path_poisson(&path, 5.0, &mut rng);
        for p in t.points() {
            // On the straight path, x == t.
            assert!((p.loc.x - p.t).abs() < 1e-9);
            assert_eq!(p.loc.y, 0.0);
        }
    }

    #[test]
    fn randn_moments() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let xs: Vec<f64> = (0..20_000).map(|_| randn(&mut rng)).collect();
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        assert!(m.abs() < 0.03, "mean {m}");
        assert!((v - 1.0).abs() < 0.05, "var {v}");
    }
}
