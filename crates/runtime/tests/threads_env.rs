//! `STS_THREADS` override tests, isolated in their own integration
//! binary: integration tests run as a separate process, so mutating
//! the process environment here cannot race the unit tests (or any
//! other test binary) that call `thread_count` concurrently.
//!
//! Within this binary the tests still share one process, so the env
//! mutation is serialized behind a single test function.

use sts_runtime::thread_count;

#[test]
fn sts_threads_env_overrides_and_invalid_values_fall_back() {
    // SAFETY-adjacent note: `set_var`/`remove_var` are process-global;
    // this is the only test in this binary touching them.
    std::env::set_var("STS_THREADS", "3");
    assert_eq!(thread_count(64), 3);
    // The cap still wins over the override.
    assert_eq!(thread_count(2), 2);
    // Zero and garbage are ignored (fall back to host parallelism).
    std::env::set_var("STS_THREADS", "0");
    let auto = thread_count(usize::MAX);
    assert!(auto >= 1);
    std::env::set_var("STS_THREADS", "not-a-number");
    assert_eq!(thread_count(usize::MAX), auto);
    // Whitespace is tolerated (systemd unit files love stray spaces).
    std::env::set_var("STS_THREADS", " 5 ");
    assert_eq!(thread_count(64), 5);
    // Negative values cannot parse as usize — fall back, don't panic.
    std::env::set_var("STS_THREADS", "-1");
    assert_eq!(thread_count(usize::MAX), auto);
    std::env::set_var("STS_THREADS", "-9223372036854775808");
    assert_eq!(thread_count(usize::MAX), auto);
    // A huge-but-parseable value is honoured (then clamped by the cap);
    // a value past usize::MAX fails to parse and falls back.
    std::env::set_var("STS_THREADS", "1000000");
    assert_eq!(thread_count(usize::MAX), 1_000_000);
    assert_eq!(thread_count(4), 4);
    std::env::set_var("STS_THREADS", "99999999999999999999999999999999");
    assert_eq!(thread_count(usize::MAX), auto);
    // Float, hex, and empty-string forms are all garbage to `parse`.
    for junk in ["2.0", "0x4", "", "  ", "+ 3"] {
        std::env::set_var("STS_THREADS", junk);
        assert_eq!(thread_count(usize::MAX), auto, "junk value {junk:?}");
    }
    std::env::remove_var("STS_THREADS");
    assert_eq!(thread_count(usize::MAX), auto);
}
