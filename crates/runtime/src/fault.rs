//! Deterministic fault injection for supervised jobs.
//!
//! The chaos suite has to push *operational* faults — panicking cells
//! and pathologically slow cells — through a real similarity job, not
//! a mock pool: the interesting failure modes live in the interplay of
//! retries, the watchdog, checkpoint flushes and the budget checks.
//! After PR 2 hardened the measure, no constructible trajectory makes
//! scoring panic, so the faults need an explicit injection point — the
//! same pattern as the failpoint hooks production storage engines ship
//! with.
//!
//! A [`FaultPlan`] is that hook: a seeded, declarative assignment of
//! faults to linear pair indices. The job's scoring loop consults it
//! immediately before every attempt (`sts-core` threads it through
//! `JobConfig::fault`); production jobs leave it `None` and pay one
//! `Option` check per cell. Classification is a pure function of
//! `(plan, linear index)`, so an interrupted-and-resumed job meets
//! exactly the faults an uninterrupted run met — which is what lets
//! the chaos suite assert byte-identical resume *under* injection.

use std::time::Duration;
use sts_rng::{Rng, SplitMix64};

/// The fault assigned to one pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Scored normally.
    None,
    /// Panics on the first `failures` attempts, then succeeds — a
    /// transient wedge that retries heal.
    Transient {
        /// Attempts that panic before the cell scores.
        failures: u32,
    },
    /// Panics on every attempt — a poisoned pair no retry heals; the
    /// job must degrade it to a `Failed` cell.
    Persistent,
    /// Sleeps before scoring — a slow pair for the watchdog to mark.
    Slow,
    /// Calls [`std::process::abort`] — `catch_unwind` cannot contain
    /// it, so an in-process job dies with the pair while a subprocess
    /// job loses one worker and quarantines the pair.
    Abort,
    /// Spins forever without reaching a cancellation checkpoint — a
    /// wedged computation only a hard-timeout kill can stop.
    Wedge,
    /// Scores normally, but a subprocess worker replaces the result
    /// frame with garbage bytes — exercising the supervisor's protocol
    /// validation. In-process execution has no protocol, so `apply`
    /// treats it as [`Fault::None`].
    GarbageOutput,
}

/// A seeded assignment of [`Fault`]s to the pair space.
///
/// Rates are per mille of pairs, drawn deterministically per linear
/// pair index; the categories are disjoint (slow wins over transient
/// wins over persistent when the rates overlap the same draw range).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed deciding which pairs fault.
    pub seed: u64,
    /// Per mille of pairs that sleep [`FaultPlan::slow_for`].
    pub slow_per_mille: u64,
    /// Per mille of pairs that panic transiently.
    pub transient_per_mille: u64,
    /// Panicking attempts a transient pair makes before succeeding.
    pub transient_failures: u32,
    /// Per mille of pairs that panic on every attempt.
    pub persistent_per_mille: u64,
    /// Per mille of pairs that abort the whole process.
    pub abort_per_mille: u64,
    /// Per mille of pairs that wedge (spin forever).
    pub wedge_per_mille: u64,
    /// Per mille of pairs whose subprocess result frame is garbage.
    pub garbage_per_mille: u64,
    /// Sleep duration of a slow pair (per attempt).
    pub slow_for: Duration,
}

impl FaultPlan {
    /// The fault assigned to linear pair index `lin` — a pure
    /// function, identical across runs, threads and resumes.
    ///
    /// The draw ladder is ordered slow → transient → persistent →
    /// abort → wedge → garbage; the three process-level categories come
    /// *last* so a plan that leaves them at zero classifies every pair
    /// exactly as it did before they existed (old chaos seeds replay
    /// unchanged).
    pub fn fault_for(&self, lin: usize) -> Fault {
        let mut rng = SplitMix64::new(self.seed ^ (lin as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        let draw = rng.random_range(0..1000u64);
        let mut edge = self.slow_per_mille;
        if draw < edge {
            return Fault::Slow;
        }
        edge += self.transient_per_mille;
        if draw < edge {
            return Fault::Transient {
                failures: self.transient_failures,
            };
        }
        edge += self.persistent_per_mille;
        if draw < edge {
            return Fault::Persistent;
        }
        edge += self.abort_per_mille;
        if draw < edge {
            return Fault::Abort;
        }
        edge += self.wedge_per_mille;
        if draw < edge {
            return Fault::Wedge;
        }
        edge += self.garbage_per_mille;
        if draw < edge {
            return Fault::GarbageOutput;
        }
        Fault::None
    }

    /// Executes the fault for attempt `attempt` (0-based) of pair
    /// `lin`: sleeps for a slow pair, panics for a (still-failing)
    /// transient or persistent pair, does nothing otherwise. Call
    /// inside the scoring `catch_unwind`, before the real work.
    pub fn apply(&self, lin: usize, attempt: u32) {
        match self.fault_for(lin) {
            Fault::None => {}
            Fault::Slow => std::thread::sleep(self.slow_for),
            Fault::Transient { failures } if attempt < failures => {
                panic!("fault injection: transient panic, pair {lin} attempt {attempt}")
            }
            Fault::Transient { .. } => {}
            Fault::Persistent => {
                panic!("fault injection: persistent panic, pair {lin} attempt {attempt}")
            }
            Fault::Abort => std::process::abort(),
            Fault::Wedge => loop {
                // Never returns, never checks cancellation: the shape
                // of a genuinely wedged computation. Only killing the
                // process stops it.
                std::thread::sleep(Duration::from_secs(3600));
            },
            // No protocol in-process; the subprocess worker handles
            // this fault itself (it corrupts the result frame).
            Fault::GarbageOutput => {}
        }
    }

    /// The linear indices (within `0..pairs`) this plan poisons
    /// persistently — the cells a supervised job must report `Failed`.
    pub fn persistent_pairs(&self, pairs: usize) -> Vec<usize> {
        (0..pairs)
            .filter(|&lin| self.fault_for(lin) == Fault::Persistent)
            .collect()
    }

    /// The linear indices (within `0..pairs`) whose fault kills or
    /// discards a worker process (abort, wedge, garbage output) — the
    /// cells a subprocess-mode job must attribute and quarantine as
    /// poison, and an in-process job cannot survive at all (aborts and
    /// wedges have no in-process recovery).
    pub fn process_killing_pairs(&self, pairs: usize) -> Vec<usize> {
        (0..pairs)
            .filter(|&lin| {
                matches!(
                    self.fault_for(lin),
                    Fault::Abort | Fault::Wedge | Fault::GarbageOutput
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn plan() -> FaultPlan {
        FaultPlan {
            seed: 7,
            slow_per_mille: 10,
            transient_per_mille: 40,
            transient_failures: 2,
            persistent_per_mille: 20,
            slow_for: Duration::from_micros(1),
            ..FaultPlan::default()
        }
    }

    #[test]
    fn classification_is_deterministic_and_roughly_at_rate() {
        let p = plan();
        let mut counts = [0usize; 3]; // slow, transient, persistent
        for lin in 0..10_000 {
            assert_eq!(p.fault_for(lin), p.fault_for(lin));
            match p.fault_for(lin) {
                Fault::Slow => counts[0] += 1,
                Fault::Transient { failures } => {
                    assert_eq!(failures, 2);
                    counts[1] += 1;
                }
                Fault::Persistent => counts[2] += 1,
                Fault::None => {}
                other => panic!("zero-rate process fault drawn: {other:?}"),
            }
        }
        // 10k draws at 10/40/20 per mille: expect ~100/~400/~200.
        assert!((50..200).contains(&counts[0]), "slow: {}", counts[0]);
        assert!((250..600).contains(&counts[1]), "transient: {}", counts[1]);
        assert!((100..350).contains(&counts[2]), "persistent: {}", counts[2]);
    }

    #[test]
    fn different_seeds_poison_different_pairs() {
        let a = FaultPlan {
            persistent_per_mille: 100,
            ..FaultPlan { seed: 1, ..plan() }
        };
        let b = FaultPlan {
            seed: 2,
            ..a.clone()
        };
        assert_ne!(a.persistent_pairs(2_000), b.persistent_pairs(2_000));
    }

    #[test]
    fn apply_panics_exactly_per_class() {
        let p = plan();
        let panics = |lin: usize, attempt: u32| {
            catch_unwind(AssertUnwindSafe(|| p.apply(lin, attempt))).is_err()
        };
        let lins = 0..10_000usize;
        let transient = lins
            .clone()
            .find(|&l| matches!(p.fault_for(l), Fault::Transient { .. }))
            .unwrap();
        let persistent = lins
            .clone()
            .find(|&l| p.fault_for(l) == Fault::Persistent)
            .unwrap();
        let clean = lins
            .clone()
            .find(|&l| p.fault_for(l) == Fault::None)
            .unwrap();
        let slow = lins
            .clone()
            .find(|&l| p.fault_for(l) == Fault::Slow)
            .unwrap();
        assert!(panics(transient, 0) && panics(transient, 1));
        assert!(!panics(transient, 2), "transient heals after `failures`");
        assert!(panics(persistent, 0) && panics(persistent, 99));
        assert!(!panics(clean, 0) && !panics(slow, 0));
    }

    #[test]
    fn process_faults_draw_after_the_legacy_ladder() {
        // With the process-level rates at zero, every pair classifies
        // exactly as it did before those categories existed — old
        // chaos seeds replay unchanged.
        let legacy = plan();
        let extended = FaultPlan {
            abort_per_mille: 0,
            wedge_per_mille: 0,
            garbage_per_mille: 0,
            ..plan()
        };
        for lin in 0..10_000 {
            assert_eq!(legacy.fault_for(lin), extended.fault_for(lin));
        }
        // Non-zero process rates classify deterministically and at
        // roughly the requested rate.
        let p = FaultPlan {
            abort_per_mille: 15,
            wedge_per_mille: 10,
            garbage_per_mille: 10,
            ..plan()
        };
        let mut counts = [0usize; 3]; // abort, wedge, garbage
        for lin in 0..10_000 {
            assert_eq!(p.fault_for(lin), p.fault_for(lin));
            match p.fault_for(lin) {
                Fault::Abort => counts[0] += 1,
                Fault::Wedge => counts[1] += 1,
                Fault::GarbageOutput => counts[2] += 1,
                _ => {}
            }
        }
        assert!((70..280).contains(&counts[0]), "abort: {}", counts[0]);
        assert!((40..200).contains(&counts[1]), "wedge: {}", counts[1]);
        assert!((40..200).contains(&counts[2]), "garbage: {}", counts[2]);
        let killers = p.process_killing_pairs(10_000);
        assert_eq!(killers.len(), counts.iter().sum::<usize>());
        assert_eq!(killers, p.process_killing_pairs(10_000));
    }

    #[test]
    fn garbage_output_is_inert_in_process() {
        // `apply` must not panic/abort for a garbage-output pair: the
        // fault only exists at the subprocess protocol layer.
        let p = FaultPlan {
            garbage_per_mille: 1000,
            ..FaultPlan::default()
        };
        for lin in 0..100 {
            assert_eq!(p.fault_for(lin), Fault::GarbageOutput);
            p.apply(lin, 0);
        }
    }

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::default();
        for lin in 0..1000 {
            assert_eq!(p.fault_for(lin), Fault::None);
            p.apply(lin, 0);
        }
        assert!(p.persistent_pairs(1000).is_empty());
    }
}
