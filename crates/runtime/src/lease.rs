//! Lease-based tile assignment with at-most-once commit.
//!
//! The sharded tile engine deals tiles to a fleet of socket workers.
//! Under network chaos the same tile can be in flight on two workers
//! at once: worker A wedges mid-tile, the lease expires, the tile is
//! re-dealt to worker B — and then A's result arrives late anyway.
//! [`LeaseTable`] is the arbiter that makes this safe:
//!
//! * every grant carries a fresh, monotonically increasing **epoch**
//!   (the wire request id), so the table can tell the live lease from
//!   every superseded one;
//! * [`LeaseTable::commit`] accepts a result only when it carries the
//!   *current* epoch of a tile that is still leased — duplicate results
//!   (same epoch twice: a duplicated frame) and stale results (an
//!   expired lease's epoch) are refused with a typed verdict;
//! * a committed tile is final: no later result, however confused the
//!   sender, can overwrite or double-count it.
//!
//! Scoring is deterministic, so refusing a stale result is correct
//! either way — the committed bytes are identical to what the stale
//! sender computed. Refusal is simply the smaller proof obligation:
//! exactly one spill per tile ever happens.
//!
//! The table is single-threaded on purpose (the coordinator owns it
//! behind its own mutex); it tracks assignment, not I/O.

use std::collections::HashMap;

/// Lifecycle of one tile in the shard scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TileState {
    /// Not yet dealt (or returned to the queue by an expiry).
    Pending,
    /// Held by a worker under the given epoch.
    Leased { epoch: u64 },
    /// Committed; the spill exists and is final.
    Done,
}

/// Verdict of a commit attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    /// First valid result for this tile under its live epoch: the
    /// caller owns the spill now.
    Committed,
    /// The tile is already committed — a duplicated or re-sent result.
    /// Discard it.
    Duplicate,
    /// The epoch does not match the live lease (an expired lease's
    /// result arriving late, or a result for a tile not currently
    /// leased). Discard it.
    Stale,
}

/// Per-tile lease registry with monotonically increasing epochs.
#[derive(Debug)]
pub struct LeaseTable {
    states: Vec<TileState>,
    /// Live epoch → tile, for reverse lookups on incoming results.
    by_epoch: HashMap<u64, usize>,
    next_epoch: u64,
    granted: usize,
    expired: usize,
    refused: usize,
}

impl LeaseTable {
    /// A table over `tiles` tiles, all pending.
    pub fn new(tiles: usize) -> Self {
        LeaseTable {
            states: vec![TileState::Pending; tiles],
            by_epoch: HashMap::new(),
            next_epoch: 1,
            granted: 0,
            expired: 0,
            refused: 0,
        }
    }

    /// Number of tiles the table tracks.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the table tracks no tiles.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Grants a lease on `tile`, superseding any live lease it had
    /// (the old epoch becomes stale immediately). Returns the new
    /// epoch, or `None` when the tile is already committed.
    pub fn lease(&mut self, tile: usize) -> Option<u64> {
        match self.states[tile] {
            TileState::Done => None,
            prev => {
                if let TileState::Leased { epoch } = prev {
                    self.by_epoch.remove(&epoch);
                }
                let epoch = self.next_epoch;
                // Epoch uniqueness is the whole at-most-once argument:
                // a wrapped counter could resurrect a zombie's stale
                // epoch as live. u64 exhaustion is unreachable in
                // practice (5 GHz of grants for a century), so treat it
                // as corruption, never wrap.
                self.next_epoch = self
                    .next_epoch
                    .checked_add(1)
                    .expect("lease epoch counter exhausted");
                self.states[tile] = TileState::Leased { epoch };
                self.by_epoch.insert(epoch, tile);
                self.granted += 1;
                Some(epoch)
            }
        }
    }

    /// Expires the live lease on `tile` (holder died or went silent):
    /// the tile returns to pending and its epoch becomes stale. No-op
    /// for tiles not currently leased.
    pub fn expire(&mut self, tile: usize) {
        if let TileState::Leased { epoch } = self.states[tile] {
            self.by_epoch.remove(&epoch);
            self.states[tile] = TileState::Pending;
            self.expired += 1;
        }
    }

    /// The tile currently leased under `epoch`, if that epoch is live.
    pub fn tile_of(&self, epoch: u64) -> Option<usize> {
        self.by_epoch.get(&epoch).copied()
    }

    /// Attempts to commit `tile` under `epoch`. Exactly one call per
    /// tile ever returns [`CommitOutcome::Committed`].
    pub fn commit(&mut self, tile: usize, epoch: u64) -> CommitOutcome {
        match self.states[tile] {
            TileState::Done => {
                self.refused += 1;
                CommitOutcome::Duplicate
            }
            TileState::Leased { epoch: live } if live == epoch => {
                self.by_epoch.remove(&epoch);
                self.states[tile] = TileState::Done;
                CommitOutcome::Committed
            }
            _ => {
                self.refused += 1;
                CommitOutcome::Stale
            }
        }
    }

    /// Marks a tile done outside the lease protocol (resumed from a
    /// verified spill, or computed by the local fallback). Any live
    /// lease it had becomes stale.
    pub fn force_done(&mut self, tile: usize) {
        if let TileState::Leased { epoch } = self.states[tile] {
            self.by_epoch.remove(&epoch);
        }
        self.states[tile] = TileState::Done;
    }

    /// True once every tile is committed.
    pub fn all_done(&self) -> bool {
        self.states.iter().all(|s| *s == TileState::Done)
    }

    /// Tiles still pending (not leased, not committed), in index order.
    pub fn pending(&self) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == TileState::Pending)
            .map(|(i, _)| i)
            .collect()
    }

    /// Leases granted over the table's lifetime (re-leases count).
    pub fn leases_granted(&self) -> usize {
        self.granted
    }

    /// Leases expired over the table's lifetime.
    pub fn leases_expired(&self) -> usize {
        self.expired
    }

    /// Commits refused (duplicate or stale) over the table's lifetime.
    pub fn commits_refused(&self) -> usize {
        self.refused
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_are_unique_and_monotonic() {
        let mut t = LeaseTable::new(3);
        let e0 = t.lease(0).unwrap();
        let e1 = t.lease(1).unwrap();
        let e2 = t.lease(2).unwrap();
        assert!(e0 < e1 && e1 < e2, "epochs must increase");
        assert_eq!(t.tile_of(e1), Some(1));
        assert_eq!(t.leases_granted(), 3);
    }

    #[test]
    fn commit_is_at_most_once() {
        let mut t = LeaseTable::new(1);
        let e = t.lease(0).unwrap();
        assert_eq!(t.commit(0, e), CommitOutcome::Committed);
        // The same result delivered twice (a duplicated frame).
        assert_eq!(t.commit(0, e), CommitOutcome::Duplicate);
        // A fresh lease on a committed tile is refused outright.
        assert_eq!(t.lease(0), None);
        assert!(t.all_done());
        assert_eq!(t.commits_refused(), 1);
    }

    #[test]
    fn stale_epochs_never_commit() {
        let mut t = LeaseTable::new(1);
        let old = t.lease(0).unwrap();
        // Holder went silent; the tile is re-dealt.
        t.expire(0);
        let new = t.lease(0).unwrap();
        assert_ne!(old, new);
        // The zombie's late result must not win.
        assert_eq!(t.commit(0, old), CommitOutcome::Stale);
        assert_eq!(t.commit(0, new), CommitOutcome::Committed);
        assert_eq!(t.leases_expired(), 1);
        assert_eq!(t.commits_refused(), 1);
    }

    #[test]
    fn releasing_supersedes_the_live_epoch() {
        let mut t = LeaseTable::new(1);
        let old = t.lease(0).unwrap();
        // Re-lease without an explicit expire (lost worker detected at
        // grant time): the old epoch silently dies.
        let new = t.lease(0).unwrap();
        assert_eq!(t.tile_of(old), None);
        assert_eq!(t.commit(0, old), CommitOutcome::Stale);
        assert_eq!(t.commit(0, new), CommitOutcome::Committed);
    }

    #[test]
    fn force_done_invalidates_the_lease() {
        let mut t = LeaseTable::new(2);
        let e = t.lease(0).unwrap();
        // Local fallback finished the tile while a zombie held it.
        t.force_done(0);
        assert_eq!(t.commit(0, e), CommitOutcome::Duplicate);
        assert!(!t.all_done());
        assert_eq!(t.pending(), vec![1]);
        t.force_done(1);
        assert!(t.all_done());
    }

    #[test]
    fn double_expiry_chain_keeps_every_dead_epoch_stale() {
        // The full zombie parade: lease → expire → re-lease → expire
        // again → re-lease. Both dead epochs' results then arrive late,
        // in either order, and must be refused; only the third (live)
        // epoch commits.
        let mut t = LeaseTable::new(1);
        let e1 = t.lease(0).unwrap();
        t.expire(0);
        let e2 = t.lease(0).unwrap();
        t.expire(0);
        let e3 = t.lease(0).unwrap();
        assert!(e1 < e2 && e2 < e3);
        assert_eq!(t.tile_of(e1), None);
        assert_eq!(t.tile_of(e2), None);
        assert_eq!(t.tile_of(e3), Some(0));
        // Second zombie reports first, then the first.
        assert_eq!(t.commit(0, e2), CommitOutcome::Stale);
        assert_eq!(t.commit(0, e1), CommitOutcome::Stale);
        assert_eq!(t.commit(0, e3), CommitOutcome::Committed);
        // Post-commit, the zombies retry: now Duplicate, not Stale.
        assert_eq!(t.commit(0, e1), CommitOutcome::Duplicate);
        assert_eq!(t.leases_granted(), 3);
        assert_eq!(t.leases_expired(), 2);
        assert_eq!(t.commits_refused(), 3);
        assert!(t.all_done());
    }

    #[test]
    #[should_panic(expected = "lease epoch counter exhausted")]
    fn epoch_counter_exhaustion_panics_instead_of_wrapping() {
        // A wrapped epoch counter would hand a live lease an epoch some
        // zombie may still hold — the guard must refuse to wrap.
        let mut t = LeaseTable::new(1);
        t.next_epoch = u64::MAX;
        let e = t.lease(0);
        // Unreachable: the grant at u64::MAX must panic, not succeed.
        assert_eq!(e, Some(u64::MAX));
    }

    #[test]
    fn expire_on_unleased_tile_is_a_no_op() {
        let mut t = LeaseTable::new(1);
        t.expire(0);
        assert_eq!(t.leases_expired(), 0);
        let e = t.lease(0).unwrap();
        assert_eq!(t.commit(0, e), CommitOutcome::Committed);
        t.expire(0);
        assert_eq!(t.leases_expired(), 0, "done tiles cannot expire");
    }
}
