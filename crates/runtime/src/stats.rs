//! Job lifecycle accounting.

use crate::StopReason;
use std::fmt;
use std::time::Duration;

/// Terminal state of a supervised job.
///
/// Lifecycle: a job is *Running* (implicit — it has no report yet),
/// degrades as cells fail, and terminates in one of these states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Every pair resolved, none failed.
    Complete,
    /// Every pair resolved, but some cells terminally failed
    /// (panicked through all retries) — the matrix is partial but
    /// consistent.
    Degraded,
    /// Stopped by the [`CancelToken`](crate::CancelToken); unprocessed
    /// cells are skipped.
    Cancelled,
    /// Stopped by the wall-clock deadline.
    DeadlineExceeded,
    /// Stopped by the max-pairs budget.
    BudgetExhausted,
    /// Stopped because the subprocess supervisor's worker-restart
    /// budget ran out (workers were dying faster than work completed).
    WorkersExhausted,
    /// Stopped because a worker refused the job handshake (protocol
    /// version or job fingerprint mismatch) — a permanent condition
    /// for the binaries involved, surfaced instead of retried.
    WorkerRejected,
}

impl JobState {
    /// Derives the terminal state from how the pool stopped and
    /// whether any cell terminally failed.
    pub fn from_run(stop: Option<StopReason>, any_failed: bool) -> Self {
        match stop {
            Some(StopReason::Cancelled) => JobState::Cancelled,
            Some(StopReason::DeadlineExceeded) => JobState::DeadlineExceeded,
            Some(StopReason::PairBudgetExhausted) => JobState::BudgetExhausted,
            Some(StopReason::WorkerRestartsExhausted) => JobState::WorkersExhausted,
            Some(StopReason::WorkerRejected) => JobState::WorkerRejected,
            None if any_failed => JobState::Degraded,
            None => JobState::Complete,
        }
    }

    /// Did the job resolve every pair (completely or degraded)?
    pub fn ran_to_end(&self) -> bool {
        matches!(self, JobState::Complete | JobState::Degraded)
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JobState::Complete => "complete",
            JobState::Degraded => "degraded",
            JobState::Cancelled => "cancelled",
            JobState::DeadlineExceeded => "deadline-exceeded",
            JobState::BudgetExhausted => "budget-exhausted",
            JobState::WorkersExhausted => "workers-exhausted",
            JobState::WorkerRejected => "worker-rejected",
        };
        write!(f, "{s}")
    }
}

/// Subprocess-supervision accounting, present only when a job ran in
/// subprocess (`ExecMode::Subprocess`) execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IsolateStats {
    /// Worker processes spawned over the whole run (initial fleet plus
    /// restarts).
    pub workers_spawned: usize,
    /// Workers respawned after a death (crash, kill, protocol error).
    pub worker_restarts: usize,
    /// Workers killed by the supervisor for exceeding the hard timeout.
    pub worker_kills: usize,
    /// Protocol violations observed (garbage output, torn frames,
    /// unexpected EOF).
    pub protocol_errors: usize,
    /// Pairs quarantined as poison after crash attribution.
    pub pairs_poisoned: usize,
    /// Deepest chunk bisection performed while attributing a crash.
    pub max_bisect_depth: usize,
}

impl fmt::Display for IsolateStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} worker(s) spawned ({} restart(s), {} kill(s)), \
             {} protocol error(s), {} poisoned pair(s), bisect depth {}",
            self.workers_spawned,
            self.worker_restarts,
            self.worker_kills,
            self.protocol_errors,
            self.pairs_poisoned,
            self.max_bisect_depth,
        )
    }
}

/// Out-of-core tiling accounting, present only when a job ran through
/// the tiled engine (`Sts::similarity_matrix_tiled` and friends in
/// `sts-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TileStats {
    /// Tiles the pair space was dealt into.
    pub tiles_total: usize,
    /// Tiles computed this run (not restored from disk).
    pub tiles_computed: usize,
    /// Tiles restored from verified spill files instead of recomputed.
    pub tiles_resumed: usize,
    /// Corrupt tile files detected (fingerprint/digest/trailer check
    /// failed), quarantined aside and recomputed. A corrupt tile is
    /// never silently read back.
    pub tiles_corrupt: usize,
    /// Tiles durably spilled *and* read-back-verified this run.
    pub tiles_spilled: usize,
    /// Spills that failed (I/O error such as ENOSPC, or a write whose
    /// read-back failed verification). The tile's results are served
    /// from memory instead — durability degrades, the matrix does not.
    pub spill_errors: usize,
    /// Orphaned `*.tmp` files swept from the tile directory at open.
    pub stale_tmp_swept: usize,
    /// Aged-out `*.tile.corrupt` quarantine files swept from the tile
    /// directory at open (the capped hygiene sweep — recent quarantines
    /// are kept for forensics, old overflow is reclaimed).
    pub corrupt_swept: usize,
    /// Peak number of cell records resident in memory at any moment —
    /// the honest bounded-memory claim, independent of allocator and
    /// OS noise: at most one in-flight tile plus spill-failed
    /// fallbacks plus whatever the merge sink retains.
    pub max_resident_cells: usize,
    /// Process peak RSS (`VmHWM`) observed after the merge, when the
    /// platform exposes it.
    pub peak_rss_bytes: Option<u64>,
}

impl fmt::Display for TileStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tile(s): {} computed, {} resumed, {} corrupt, {} spilled, \
             {} spill error(s), peak {} resident cell(s)",
            self.tiles_total,
            self.tiles_computed,
            self.tiles_resumed,
            self.tiles_corrupt,
            self.tiles_spilled,
            self.spill_errors,
            self.max_resident_cells,
        )
    }
}

/// Sharded-execution accounting, present only when a job dealt its
/// tiles to a socket-connected worker fleet (`ExecMode::Sharded` in
/// `sts-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Workers the coordinator spawned over the whole run (initial
    /// fleet plus restarts).
    pub workers_spawned: usize,
    /// Workers respawned after a loss (death, deadline, protocol).
    pub worker_restarts: usize,
    /// Workers that refused the handshake (version or fingerprint
    /// mismatch) and were rejected with a typed error.
    pub workers_rejected: usize,
    /// Tile leases granted (re-leases of the same tile count again).
    pub tiles_leased: usize,
    /// Leases that expired — the holder died, wedged, or missed its
    /// heartbeat deadline — and whose tile was re-dealt.
    pub leases_expired: usize,
    /// Results refused by the at-most-once commit gate: duplicates of
    /// an already-committed tile or stale epochs from a superseded
    /// lease. Refused results are discarded, never merged.
    pub commits_refused: usize,
    /// Garbage frames observed on worker connections (corrupt bytes
    /// on the wire); each costs the offending worker its lease.
    pub frames_corrupt: usize,
    /// Tiles computed locally after the fleet was exhausted — the
    /// graceful-degradation path (the job completes in-process instead
    /// of failing).
    pub tiles_local_fallback: usize,
    /// Clean final telemetry flushes received from shutting-down
    /// workers (`bye` frames): `== workers alive at shutdown` on a
    /// healthy run, fewer under chaos.
    pub telemetry_flushes: usize,
}

impl fmt::Display for ShardStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} worker(s) spawned ({} restart(s), {} rejected), \
             {} lease(s) ({} expired, {} commit(s) refused), \
             {} corrupt frame(s), {} local-fallback tile(s), \
             {} telemetry flush(es)",
            self.workers_spawned,
            self.worker_restarts,
            self.workers_rejected,
            self.tiles_leased,
            self.leases_expired,
            self.commits_refused,
            self.frames_corrupt,
            self.tiles_local_fallback,
            self.telemetry_flushes,
        )
    }
}

/// Timing, retry and completion accounting for one supervised job.
/// The measure-specific half of the report (quarantines, per-cell
/// outcomes) lives in `sts-core`'s `BatchReport`; this is the
/// runtime half.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStats {
    /// Terminal state.
    pub state: JobState,
    /// Wall-clock time of the run (excludes checkpoint-restored work).
    pub elapsed: Duration,
    /// Total pairs in the matrix.
    pub pairs_total: usize,
    /// Pairs with a terminal outcome (scored, quarantined, failed) —
    /// including cells restored from a checkpoint.
    pub pairs_completed: usize,
    /// Pairs whose scoring panicked through every retry.
    pub pairs_failed: usize,
    /// Pairs never attempted (budget/deadline/cancel stopped the job).
    pub pairs_skipped: usize,
    /// Pairs restored from the checkpoint instead of recomputed.
    pub pairs_resumed: usize,
    /// Chunks dealt to the pool (excludes chunks fully covered by the
    /// checkpoint, which are never queued).
    pub chunks_total: usize,
    /// Chunks that completed.
    pub chunks_completed: usize,
    /// Chunks that failed terminally (pool-level backstop).
    pub chunks_failed: usize,
    /// Chunks skipped by an early stop.
    pub chunks_skipped: usize,
    /// Retry attempts performed (cell-level and chunk-level).
    pub retries: u64,
    /// Ids of chunks that exceeded the per-chunk soft timeout.
    pub slow_chunks: Vec<usize>,
    /// Checkpoint flushes written during the run.
    pub checkpoint_flushes: usize,
    /// Checkpoint flushes that failed with an I/O error (the job keeps
    /// running — losing durability is better than losing the matrix).
    pub checkpoint_write_errors: usize,
    /// Total time chunks spent queued before a worker picked them up,
    /// summed over all attempts (`> elapsed` is normal with several
    /// workers: it sums *per-chunk* waits).
    pub chunk_wait_total: Duration,
    /// Total time workers spent inside chunk work functions, summed
    /// over all attempts.
    pub chunk_run_total: Duration,
    /// Subprocess-supervision accounting; `None` for in-process runs.
    pub isolate: Option<IsolateStats>,
    /// Out-of-core tiling accounting; `None` for in-memory runs.
    pub tiles: Option<TileStats>,
    /// Sharded-execution accounting; `None` unless the job dealt tiles
    /// to a socket worker fleet.
    pub shard: Option<ShardStats>,
}

impl JobStats {
    /// Fraction of the matrix with a terminal outcome, in percent.
    /// An empty matrix is 100% complete — and so is a zero-pair job
    /// stopped before it started, whichever path produced it.
    pub fn percent_complete(&self) -> f64 {
        if self.pairs_total == 0 {
            100.0
        } else {
            100.0 * self.pairs_completed as f64 / self.pairs_total as f64
        }
    }

    /// Mean time a chunk spent queued, over chunks the pool actually
    /// dealt (zero when nothing ran).
    pub fn mean_chunk_wait(&self) -> Duration {
        let ran = self.chunks_completed + self.chunks_failed;
        if ran == 0 {
            Duration::ZERO
        } else {
            self.chunk_wait_total / u32::try_from(ran).unwrap_or(u32::MAX)
        }
    }

    /// Mean time a chunk spent running, over chunks the pool actually
    /// dealt (zero when nothing ran).
    pub fn mean_chunk_run(&self) -> Duration {
        let ran = self.chunks_completed + self.chunks_failed;
        if ran == 0 {
            Duration::ZERO
        } else {
            self.chunk_run_total / u32::try_from(ran).unwrap_or(u32::MAX)
        }
    }
}

impl fmt::Display for JobStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.1}% complete ({}/{} pairs, {} resumed, {} failed, {} skipped) \
             in {:.3}s; {} retries, {} slow chunk(s), {} checkpoint flush(es)",
            self.state,
            self.percent_complete(),
            self.pairs_completed,
            self.pairs_total,
            self.pairs_resumed,
            self.pairs_failed,
            self.pairs_skipped,
            self.elapsed.as_secs_f64(),
            self.retries,
            self.slow_chunks.len(),
            self.checkpoint_flushes,
        )?;
        if self.chunk_run_total > Duration::ZERO {
            write!(
                f,
                "; chunk wait/run {:.3}s/{:.3}s",
                self.chunk_wait_total.as_secs_f64(),
                self.chunk_run_total.as_secs_f64(),
            )?;
        }
        if self.checkpoint_write_errors > 0 {
            write!(
                f,
                " [{} checkpoint write error(s)]",
                self.checkpoint_write_errors
            )?;
        }
        if let Some(iso) = &self.isolate {
            write!(f, "; isolate: {iso}")?;
        }
        if let Some(tiles) = &self.tiles {
            write!(f, "; tiles: {tiles}")?;
        }
        if let Some(shard) = &self.shard {
            write!(f, "; shard: {shard}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_derivation() {
        assert_eq!(JobState::from_run(None, false), JobState::Complete);
        assert_eq!(JobState::from_run(None, true), JobState::Degraded);
        assert_eq!(
            JobState::from_run(Some(StopReason::Cancelled), false),
            JobState::Cancelled
        );
        assert_eq!(
            JobState::from_run(Some(StopReason::DeadlineExceeded), true),
            JobState::DeadlineExceeded
        );
        assert_eq!(
            JobState::from_run(Some(StopReason::PairBudgetExhausted), false),
            JobState::BudgetExhausted
        );
        assert_eq!(
            JobState::from_run(Some(StopReason::WorkerRestartsExhausted), true),
            JobState::WorkersExhausted
        );
        assert_eq!(
            JobState::from_run(Some(StopReason::WorkerRejected), false),
            JobState::WorkerRejected
        );
        assert!(JobState::Complete.ran_to_end());
        assert!(JobState::Degraded.ran_to_end());
        assert!(!JobState::Cancelled.ran_to_end());
        assert!(!JobState::WorkersExhausted.ran_to_end());
    }

    #[test]
    fn percent_complete_handles_empty_and_partial() {
        let mut s = JobStats {
            state: JobState::Complete,
            elapsed: Duration::from_millis(5),
            pairs_total: 0,
            pairs_completed: 0,
            pairs_failed: 0,
            pairs_skipped: 0,
            pairs_resumed: 0,
            chunks_total: 0,
            chunks_completed: 0,
            chunks_failed: 0,
            chunks_skipped: 0,
            retries: 0,
            slow_chunks: Vec::new(),
            checkpoint_flushes: 0,
            checkpoint_write_errors: 0,
            chunk_wait_total: Duration::ZERO,
            chunk_run_total: Duration::ZERO,
            isolate: None,
            tiles: None,
            shard: None,
        };
        assert_eq!(s.percent_complete(), 100.0);
        s.pairs_total = 200;
        s.pairs_completed = 50;
        assert_eq!(s.percent_complete(), 25.0);
        let text = s.to_string();
        assert!(text.contains("25.0% complete"), "{text}");
        assert!(text.contains("50/200"), "{text}");
    }

    fn empty_stats(state: JobState) -> JobStats {
        JobStats {
            state,
            elapsed: Duration::ZERO,
            pairs_total: 0,
            pairs_completed: 0,
            pairs_failed: 0,
            pairs_skipped: 0,
            pairs_resumed: 0,
            chunks_total: 0,
            chunks_completed: 0,
            chunks_failed: 0,
            chunks_skipped: 0,
            retries: 0,
            slow_chunks: Vec::new(),
            checkpoint_flushes: 0,
            checkpoint_write_errors: 0,
            chunk_wait_total: Duration::ZERO,
            chunk_run_total: Duration::ZERO,
            isolate: None,
            tiles: None,
            shard: None,
        }
    }

    #[test]
    fn zero_pair_jobs_report_100_percent_in_every_terminal_state() {
        // A degenerate (zero-pair) job must read as fully complete no
        // matter how it terminated — budget-stopped empty jobs used to
        // be ambiguous.
        for state in [
            JobState::Complete,
            JobState::Degraded,
            JobState::Cancelled,
            JobState::DeadlineExceeded,
            JobState::BudgetExhausted,
            JobState::WorkersExhausted,
            JobState::WorkerRejected,
        ] {
            let s = empty_stats(state);
            assert_eq!(s.percent_complete(), 100.0, "{state}");
            assert_eq!(s.mean_chunk_wait(), Duration::ZERO);
            assert_eq!(s.mean_chunk_run(), Duration::ZERO);
        }
    }

    #[test]
    fn chunk_timing_means_and_display() {
        let mut s = empty_stats(JobState::Complete);
        s.pairs_total = 100;
        s.pairs_completed = 100;
        s.chunks_total = 4;
        s.chunks_completed = 3;
        s.chunks_failed = 1;
        s.chunk_wait_total = Duration::from_millis(40);
        s.chunk_run_total = Duration::from_millis(200);
        assert_eq!(s.mean_chunk_wait(), Duration::from_millis(10));
        assert_eq!(s.mean_chunk_run(), Duration::from_millis(50));
        let text = s.to_string();
        assert!(text.contains("chunk wait/run 0.040s/0.200s"), "{text}");
    }

    #[test]
    fn shard_stats_render_in_the_job_report() {
        let mut s = empty_stats(JobState::Complete);
        s.shard = Some(ShardStats {
            workers_spawned: 4,
            worker_restarts: 2,
            workers_rejected: 1,
            tiles_leased: 9,
            leases_expired: 2,
            commits_refused: 1,
            frames_corrupt: 3,
            tiles_local_fallback: 0,
            telemetry_flushes: 2,
        });
        let text = s.to_string();
        assert!(text.contains("shard: 4 worker(s) spawned"), "{text}");
        assert!(text.contains("9 lease(s) (2 expired"), "{text}");
        assert!(text.contains("3 corrupt frame(s)"), "{text}");
    }
}
