//! The injectable storage boundary for durable job artifacts.
//!
//! Everything the runtime persists — checkpoints, matrix tiles — goes
//! through the [`Storage`] trait instead of calling `std::fs`
//! directly. Production uses [`FsStorage`], which owns the workspace's
//! atomic-write discipline (tmp file → flush → `fsync` → rename →
//! parent-directory `fsync`); the chaos suite swaps in `sts-robust`'s
//! `FaultyStorage`, which injects torn writes, bit flips, ENOSPC and
//! stale tmp files *under* the exact code paths production runs. That
//! is the point of the trait: durability claims are only as good as
//! the faults they have been tested against.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A byte-level durable store. Implementations must be safe to share
/// across the worker threads of one job.
///
/// The contract [`write_atomic`](Storage::write_atomic) must uphold:
/// after it returns `Ok`, `path` holds exactly `bytes` and survives a
/// host crash; after it returns `Err` (or the process dies inside it),
/// `path` holds whatever it held before — never a torn file. A failed
/// write may leave a `<stem>.tmp` sibling behind; callers sweep those
/// on open (see [`sweep_stale_tmp`]).
pub trait Storage: Send + Sync {
    /// Atomically and durably replaces `path` with `bytes`.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Reads the whole file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Does `path` exist?
    fn exists(&self, path: &Path) -> bool;

    /// Removes the file at `path`.
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// Renames `from` to `to` (same directory; used to quarantine
    /// corrupt artifacts aside rather than destroy the evidence).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Lists the files directly inside `dir`.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Last-modified time of `path`, when the backend tracks one.
    /// `Ok(None)` means "unknown" — age-based hygiene (quarantine
    /// sweeps) then falls back to count-based policies only.
    fn modified(&self, _path: &Path) -> io::Result<Option<std::time::SystemTime>> {
        Ok(None)
    }
}

/// The tmp-file sibling a partially completed [`Storage::write_atomic`]
/// may leave next to `path`.
pub fn tmp_path(path: &Path) -> PathBuf {
    path.with_extension("tmp")
}

/// The production [`Storage`]: plain `std::fs`, with the atomic-write
/// discipline the checkpoint layer proved out in PR 3/5.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsStorage;

impl Storage for FsStorage {
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = tmp_path(path);
        fs::write(&tmp, bytes)?;
        // Durability of the *data* needs an fsync before the rename;
        // otherwise a crash can leave the renamed file empty.
        fs::File::open(&tmp)?.sync_all()?;
        fs::rename(&tmp, path)?;
        // Durability of the *rename* needs the directory entry
        // flushed; platforms that cannot fsync a directory (or a path
        // with no parent) just skip it — the rename is still atomic.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn modified(&self, path: &Path) -> io::Result<Option<std::time::SystemTime>> {
        Ok(fs::metadata(path)?.modified().ok())
    }
}

/// Sweeps orphaned `*.tmp` files out of `dir`: debris from writes
/// killed between tmp-write and rename. Returns how many were deleted
/// and bumps the `runtime.checkpoint.stale_tmp_swept` counter, so
/// silent garbage accumulation is visible in telemetry. Failures to
/// remove individual files are ignored — sweeping is hygiene, not
/// correctness (an un-renamed tmp is never *read* by anything).
pub fn sweep_stale_tmp(storage: &dyn Storage, dir: &Path) -> io::Result<usize> {
    let mut swept = 0usize;
    for path in storage.list(dir)? {
        if path.extension().is_some_and(|e| e == "tmp") && storage.remove(&path).is_ok() {
            swept += 1;
        }
    }
    if swept > 0 {
        sts_obs::static_counter!("runtime.checkpoint.stale_tmp_swept").add(swept as u64);
    }
    Ok(swept)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sts-store-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_round_trips_and_leaves_no_tmp() {
        let dir = temp_dir("rt");
        let path = dir.join("artifact.tile");
        let s = FsStorage;
        s.write_atomic(&path, b"hello tiles").unwrap();
        assert!(!tmp_path(&path).exists(), "tmp renamed away");
        assert_eq!(s.read(&path).unwrap(), b"hello tiles");
        // Overwrite is atomic too.
        s.write_atomic(&path, b"v2").unwrap();
        assert_eq!(s.read(&path).unwrap(), b"v2");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn list_returns_only_files_sorted() {
        let dir = temp_dir("ls");
        fs::create_dir_all(dir.join("subdir")).unwrap();
        let s = FsStorage;
        s.write_atomic(&dir.join("b.tile"), b"b").unwrap();
        s.write_atomic(&dir.join("a.tile"), b"a").unwrap();
        let names: Vec<String> = s
            .list(&dir)
            .unwrap()
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["a.tile", "b.tile"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_removes_only_tmp_debris_and_counts() {
        let dir = temp_dir("sweep");
        let s = FsStorage;
        s.write_atomic(&dir.join("keep.tile"), b"keep").unwrap();
        fs::write(dir.join("orphan-1.tmp"), b"torn").unwrap();
        fs::write(dir.join("orphan-2.tmp"), b"torn").unwrap();
        let before = sts_obs::metrics::global()
            .snapshot()
            .counter("runtime.checkpoint.stale_tmp_swept")
            .unwrap_or(0);
        let swept = sweep_stale_tmp(&s, &dir).unwrap();
        assert_eq!(swept, 2);
        assert!(dir.join("keep.tile").exists());
        assert!(!dir.join("orphan-1.tmp").exists());
        let after = sts_obs::metrics::global()
            .snapshot()
            .counter("runtime.checkpoint.stale_tmp_swept")
            .unwrap_or(0);
        assert!(after >= before + 2, "sweep counter must advance");
        fs::remove_dir_all(&dir).unwrap();
    }
}
