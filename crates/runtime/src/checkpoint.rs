//! Line-based job checkpoints.
//!
//! The same zero-dependency text style as the `sts-traj` `io` module:
//! one record per line, whitespace-separated fields, `#` comments.
//!
//! ```text
//! # anything after a hash is a comment
//! checkpoint v1
//! fingerprint <16 hex digits>
//! dims <rows> <cols>
//! cell <i> <j> s <score>      # scored cell
//! cell <i> <j> f <attempts>   # terminally failed cell (attempts made)
//! cell <i> <j> p              # panicked cell (legacy no-retry mode)
//! cell <i> <j> x <exit>       # poison pair that killed a worker
//! ```
//!
//! The `x` record's `<exit>` is the single-token form of
//! [`WorkerExit`](crate::WorkerExit) (`signal:6`, `hard-timeout`, …),
//! written by subprocess-mode jobs after crash attribution so a
//! resumed job never re-runs — and never re-dies on — a known poison
//! pair.
//!
//! Scores are written with Rust's shortest-round-trip `f64` formatting
//! (`Display`), which parses back to the *bit-identical* value —
//! including `NaN`, `inf` and `-0` — so a resumed job reproduces an
//! uninterrupted run's matrix byte for byte. The fingerprint binds a
//! checkpoint to its job inputs (grid geometry + trajectory shapes);
//! resuming against different inputs is refused by the caller rather
//! than silently producing a franken-matrix.
//!
//! Quarantined cells are deliberately *not* checkpointed: quarantine
//! is re-derived from preparation on resume (it is cheap and depends
//! only on the inputs the fingerprint already covers).

use std::fmt;
use std::fs;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// FNV-1a 64-bit — the workspace's zero-dependency fingerprint hash.
/// Not cryptographic; it guards against *accidental* input mismatch
/// (wrong file, edited corpus), which is the failure mode resume
/// actually meets.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds an `f64` by bit pattern (so `-0.0` and `0.0` differ and
    /// `NaN` payloads are preserved — the fingerprint is about bytes,
    /// not numerics).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// A checkpointed cell outcome. Mirrors the terminal, *computed*
/// outcomes of the matrix job; the mapping to `sts-core`'s
/// `PairOutcome` lives there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellRecord {
    /// The cell was scored.
    Score(f64),
    /// The cell panicked on every attempt (`attempts` made).
    Failed {
        /// Total attempts consumed before giving up.
        attempts: u32,
    },
    /// The cell panicked with retries disabled (legacy degraded mode).
    Panicked,
    /// The cell killed a worker subprocess and was quarantined with
    /// the worker's exit status (subprocess execution mode).
    Poisoned {
        /// How the worker holding this pair died.
        exit: crate::WorkerExit,
    },
}

/// An in-memory checkpoint: header plus every terminal cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Job-input fingerprint (see [`Fnv1a`]).
    pub fingerprint: u64,
    /// Query-row count of the matrix.
    pub rows: usize,
    /// Candidate-column count of the matrix.
    pub cols: usize,
    /// `(row, col, record)` for every checkpointed cell.
    pub cells: Vec<(usize, usize, CellRecord)>,
}

/// Errors reading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number of the malformed line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "I/O error: {e}"),
            CheckpointError::Parse { line, message } => {
                write!(f, "checkpoint line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Writes a checkpoint in the text format.
pub fn write_checkpoint<W: Write>(w: &mut W, cp: &Checkpoint) -> io::Result<()> {
    writeln!(w, "# STS job checkpoint (DESIGN.md §3d)")?;
    writeln!(w, "checkpoint v1")?;
    writeln!(w, "fingerprint {:016x}", cp.fingerprint)?;
    writeln!(w, "dims {} {}", cp.rows, cp.cols)?;
    for &(i, j, rec) in &cp.cells {
        match rec {
            CellRecord::Score(s) => writeln!(w, "cell {i} {j} s {s}")?,
            CellRecord::Failed { attempts } => writeln!(w, "cell {i} {j} f {attempts}")?,
            CellRecord::Panicked => writeln!(w, "cell {i} {j} p")?,
            CellRecord::Poisoned { exit } => writeln!(w, "cell {i} {j} x {exit}")?,
        }
    }
    Ok(())
}

/// Reads a checkpoint. Blank lines and `#` comments are ignored;
/// out-of-range cells are a parse error; a duplicated cell keeps the
/// last record (a crash between append-style flushes must not poison
/// the whole file).
pub fn read_checkpoint<R: BufRead>(r: &mut R) -> Result<Checkpoint, CheckpointError> {
    let mut header_seen = false;
    let mut fingerprint: Option<u64> = None;
    let mut dims: Option<(usize, usize)> = None;
    let mut cells = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parse_err = |message: String| CheckpointError::Parse {
            line: lineno,
            message,
        };
        let mut fields = line.split_whitespace();
        let keyword = fields.next().unwrap_or("");
        if !header_seen {
            if keyword != "checkpoint" || fields.next() != Some("v1") {
                return Err(parse_err(format!(
                    "expected `checkpoint v1` header, got `{line}`"
                )));
            }
            header_seen = true;
            continue;
        }
        match keyword {
            "fingerprint" => {
                let hex = fields
                    .next()
                    .ok_or_else(|| parse_err("missing fingerprint value".into()))?;
                fingerprint = Some(
                    u64::from_str_radix(hex, 16)
                        .map_err(|_| parse_err(format!("bad fingerprint `{hex}`")))?,
                );
            }
            "dims" => {
                let mut n = |name: &str| -> Result<usize, CheckpointError> {
                    fields
                        .next()
                        .ok_or_else(|| parse_err(format!("missing {name}")))?
                        .parse()
                        .map_err(|_| parse_err(format!("bad {name}")))
                };
                dims = Some((n("rows")?, n("cols")?));
            }
            "cell" => {
                let (rows, cols) = dims.ok_or_else(|| parse_err("cell before dims".into()))?;
                let mut n = |name: &str| -> Result<usize, CheckpointError> {
                    fields
                        .next()
                        .ok_or_else(|| parse_err(format!("missing {name}")))?
                        .parse()
                        .map_err(|_| parse_err(format!("bad {name}")))
                };
                let i = n("row")?;
                let j = n("col")?;
                if i >= rows || j >= cols {
                    return Err(parse_err(format!(
                        "cell ({i},{j}) outside dims {rows}x{cols}"
                    )));
                }
                let tag = fields
                    .next()
                    .ok_or_else(|| parse_err("missing cell tag".into()))?;
                let rec = match tag {
                    "s" => {
                        let v = fields
                            .next()
                            .ok_or_else(|| parse_err("missing score".into()))?;
                        CellRecord::Score(
                            v.parse()
                                .map_err(|_| parse_err(format!("bad score `{v}`")))?,
                        )
                    }
                    "f" => {
                        let v = fields
                            .next()
                            .ok_or_else(|| parse_err("missing attempts".into()))?;
                        CellRecord::Failed {
                            attempts: v
                                .parse()
                                .map_err(|_| parse_err(format!("bad attempts `{v}`")))?,
                        }
                    }
                    "p" => CellRecord::Panicked,
                    "x" => {
                        let v = fields
                            .next()
                            .ok_or_else(|| parse_err("missing worker exit".into()))?;
                        CellRecord::Poisoned {
                            exit: v
                                .parse()
                                .map_err(|_| parse_err(format!("bad worker exit `{v}`")))?,
                        }
                    }
                    other => return Err(parse_err(format!("unknown cell tag `{other}`"))),
                };
                cells.push((i, j, rec));
            }
            other => return Err(parse_err(format!("unknown record `{other}`"))),
        }
    }
    let fingerprint = fingerprint.ok_or_else(|| CheckpointError::Parse {
        line: 0,
        message: "missing fingerprint record".into(),
    })?;
    let (rows, cols) = dims.ok_or_else(|| CheckpointError::Parse {
        line: 0,
        message: "missing dims record".into(),
    })?;
    // Last record wins for duplicated cells.
    let mut last = std::collections::BTreeMap::new();
    for (i, j, rec) in cells {
        last.insert((i, j), rec);
    }
    Ok(Checkpoint {
        fingerprint,
        rows,
        cols,
        cells: last.into_iter().map(|((i, j), rec)| (i, j, rec)).collect(),
    })
}

/// Saves a checkpoint atomically and durably: write to `<path>.tmp`,
/// `fsync` the data, rename over `path`, then `fsync` the parent
/// directory (best effort) so the rename itself survives a host crash
/// — a job killed mid-flush leaves either the previous checkpoint or
/// the new one, never a torn file and never an un-renamed tmp the next
/// load would mistake for progress.
pub fn save_checkpoint(path: &Path, cp: &Checkpoint) -> io::Result<()> {
    let _span = sts_obs::trace::span("checkpoint.save");
    let started = std::time::Instant::now();
    let tmp = path.with_extension("tmp");
    let result = (|| {
        let mut f = io::BufWriter::new(fs::File::create(&tmp)?);
        write_checkpoint(&mut f, cp)?;
        f.flush()?;
        f.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        fs::rename(&tmp, path)?;
        // Durability of the rename needs the directory entry flushed;
        // platforms that cannot fsync a directory (or a path with no
        // parent) just skip it — the rename is still atomic.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    })();
    sts_obs::static_histogram!("runtime.checkpoint.save_ns").record_duration(started.elapsed());
    result
}

/// Loads a checkpoint from disk, first sweeping any stale `<path>.tmp`
/// left by a save that was killed between write and rename — debris
/// that would otherwise sit next to the valid checkpoint confusing
/// operators (and a later save would clobber it anyway).
pub fn load_checkpoint(path: &Path) -> Result<Checkpoint, CheckpointError> {
    let _span = sts_obs::trace::span("checkpoint.load");
    let started = std::time::Instant::now();
    let tmp = path.with_extension("tmp");
    if tmp.exists() {
        // Best effort: failing to remove debris must not fail the load.
        let _ = fs::remove_file(&tmp);
    }
    let f = fs::File::open(path)?;
    let result = read_checkpoint(&mut io::BufReader::new(f));
    sts_obs::static_histogram!("runtime.checkpoint.load_ns").record_duration(started.elapsed());
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            fingerprint: 0xDEAD_BEEF_0123_4567,
            rows: 3,
            cols: 4,
            cells: vec![
                (0, 0, CellRecord::Score(0.12345678901234567)),
                (0, 3, CellRecord::Score(f64::NAN)),
                (1, 1, CellRecord::Score(-0.0)),
                (1, 2, CellRecord::Score(f64::INFINITY)),
                (2, 0, CellRecord::Failed { attempts: 3 }),
                (
                    2,
                    1,
                    CellRecord::Poisoned {
                        exit: crate::WorkerExit::Signal(6),
                    },
                ),
                (
                    2,
                    2,
                    CellRecord::Poisoned {
                        exit: crate::WorkerExit::HardTimeout,
                    },
                ),
                (2, 3, CellRecord::Panicked),
            ],
        }
    }

    /// Bit-exact cell equality (`PartialEq` on `f64` misses NaN and
    /// conflates `0.0`/`-0.0`).
    fn bit_eq(a: &CellRecord, b: &CellRecord) -> bool {
        match (a, b) {
            (CellRecord::Score(x), CellRecord::Score(y)) => x.to_bits() == y.to_bits(),
            _ => a == b,
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let cp = sample();
        let mut bytes = Vec::new();
        write_checkpoint(&mut bytes, &cp).unwrap();
        let back = read_checkpoint(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.fingerprint, cp.fingerprint);
        assert_eq!((back.rows, back.cols), (cp.rows, cp.cols));
        assert_eq!(back.cells.len(), cp.cells.len());
        for ((i1, j1, r1), (i2, j2, r2)) in back.cells.iter().zip(&cp.cells) {
            assert_eq!((i1, j1), (i2, j2));
            assert!(bit_eq(r1, r2), "({i1},{j1}): {r1:?} vs {r2:?}");
        }
    }

    #[test]
    fn random_scores_round_trip_bit_exact() {
        use sts_rng::{Rng, Xoshiro256pp};
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let cells: Vec<_> = (0..200)
            .map(|k| (k / 20, k % 20, CellRecord::Score(rng.f64().powi(7) * 1e3)))
            .collect();
        let cp = Checkpoint {
            fingerprint: 1,
            rows: 10,
            cols: 20,
            cells,
        };
        let mut bytes = Vec::new();
        write_checkpoint(&mut bytes, &cp).unwrap();
        let back = read_checkpoint(&mut bytes.as_slice()).unwrap();
        for ((_, _, a), (_, _, b)) in back.cells.iter().zip(&cp.cells) {
            assert!(bit_eq(a, b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn save_and_load_via_tmp_rename() {
        let dir = std::env::temp_dir().join("sts-runtime-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job.ckpt");
        let cp = sample();
        save_checkpoint(&path, &cp).unwrap();
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file renamed away"
        );
        let back = load_checkpoint(&path).unwrap();
        assert_eq!(back.rows, cp.rows);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_tmp_debris_is_swept_on_load() {
        let dir = std::env::temp_dir().join("sts-runtime-ckpt-sweep-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job.ckpt");
        save_checkpoint(&path, &sample()).unwrap();
        // Simulate a save killed between write and rename: a torn tmp
        // file sits next to the valid checkpoint.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, "checkpoint v1\nfingerp").unwrap();
        let back = load_checkpoint(&path).unwrap();
        assert_eq!(back.rows, sample().rows);
        assert!(!tmp.exists(), "stale tmp must be swept on load");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_cells_keep_the_last_record() {
        let text = "checkpoint v1\nfingerprint 1\ndims 2 2\ncell 0 0 s 0.5\ncell 0 0 s 0.75\n";
        let cp = read_checkpoint(&mut text.as_bytes()).unwrap();
        assert_eq!(cp.cells, vec![(0, 0, CellRecord::Score(0.75))]);
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        for (text, want) in [
            ("not a checkpoint\n", "header"),
            ("checkpoint v2\n", "header"),
            ("checkpoint v1\nfingerprint xyz\n", "bad fingerprint"),
            (
                "checkpoint v1\nfingerprint 1\ncell 0 0 s 1.0\n",
                "before dims",
            ),
            (
                "checkpoint v1\nfingerprint 1\ndims 2 2\ncell 5 0 s 1.0\n",
                "outside dims",
            ),
            (
                "checkpoint v1\nfingerprint 1\ndims 2 2\ncell 0 0 z\n",
                "unknown cell tag",
            ),
            (
                "checkpoint v1\nfingerprint 1\ndims 2 2\ncell 0 0 x\n",
                "missing worker exit",
            ),
            (
                "checkpoint v1\nfingerprint 1\ndims 2 2\ncell 0 0 x sig9\n",
                "bad worker exit",
            ),
            ("checkpoint v1\ndims 2 2\n", "missing fingerprint"),
            ("checkpoint v1\nfingerprint 1\n", "missing dims"),
        ] {
            let err = read_checkpoint(&mut text.as_bytes()).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(want), "`{text}` -> `{msg}` (wanted `{want}`)");
        }
    }

    #[test]
    fn fnv1a_is_stable_and_input_sensitive() {
        let mut a = Fnv1a::new();
        a.write(b"hello");
        // Reference FNV-1a 64 digest of "hello".
        assert_eq!(a.finish(), 0xa430_d846_80aa_bd0b);
        let mut b = Fnv1a::new();
        b.write_f64(0.0);
        let mut c = Fnv1a::new();
        c.write_f64(-0.0);
        assert_ne!(b.finish(), c.finish(), "sign of zero must matter");
    }
}
