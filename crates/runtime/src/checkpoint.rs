//! Line-based job checkpoints.
//!
//! The same zero-dependency text style as the `sts-traj` `io` module:
//! one record per line, whitespace-separated fields, `#` comments.
//!
//! ```text
//! # anything after a hash is a comment
//! checkpoint v1
//! fingerprint <16 hex digits>
//! dims <rows> <cols>
//! cell <i> <j> s <score>      # scored cell
//! cell <i> <j> f <attempts>   # terminally failed cell (attempts made)
//! cell <i> <j> p              # panicked cell (legacy no-retry mode)
//! cell <i> <j> x <exit>       # poison pair that killed a worker
//! ```
//!
//! The `x` record's `<exit>` is the single-token form of
//! [`WorkerExit`](crate::WorkerExit) (`signal:6`, `hard-timeout`, …),
//! written by subprocess-mode jobs after crash attribution so a
//! resumed job never re-runs — and never re-dies on — a known poison
//! pair.
//!
//! Scores are written with Rust's shortest-round-trip `f64` formatting
//! (`Display`), which parses back to the *bit-identical* value —
//! including `NaN`, `inf` and `-0` — so a resumed job reproduces an
//! uninterrupted run's matrix byte for byte. The fingerprint binds a
//! checkpoint to its job inputs (grid geometry + trajectory shapes);
//! resuming against different inputs is refused by the caller rather
//! than silently producing a franken-matrix.
//!
//! Quarantined cells are deliberately *not* checkpointed: quarantine
//! is re-derived from preparation on resume (it is cheap and depends
//! only on the inputs the fingerprint already covers).

use crate::store::Storage;
use std::fmt;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// FNV-1a 64-bit — the workspace's zero-dependency fingerprint hash.
/// Not cryptographic; it guards against *accidental* input mismatch
/// (wrong file, edited corpus), which is the failure mode resume
/// actually meets.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds an `f64` by bit pattern (so `-0.0` and `0.0` differ and
    /// `NaN` payloads are preserved — the fingerprint is about bytes,
    /// not numerics).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// A checkpointed cell outcome. Mirrors the terminal, *computed*
/// outcomes of the matrix job; the mapping to `sts-core`'s
/// `PairOutcome` lives there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellRecord {
    /// The cell was scored.
    Score(f64),
    /// The cell panicked on every attempt (`attempts` made).
    Failed {
        /// Total attempts consumed before giving up.
        attempts: u32,
    },
    /// The cell panicked with retries disabled (legacy degraded mode).
    Panicked,
    /// The cell killed a worker subprocess and was quarantined with
    /// the worker's exit status (subprocess execution mode).
    Poisoned {
        /// How the worker holding this pair died.
        exit: crate::WorkerExit,
    },
}

/// The record's tag-and-value fields (`s 0.5`, `f 3`, `p`,
/// `x signal:6`) — the part of a `cell` line after the indices. Shared
/// with the tile format (`crate::tile`), which keys records by linear
/// index instead of `(row, col)` but stores identical outcomes.
pub(crate) fn record_fields(rec: &CellRecord) -> String {
    match rec {
        CellRecord::Score(s) => format!("s {s}"),
        CellRecord::Failed { attempts } => format!("f {attempts}"),
        CellRecord::Panicked => "p".to_string(),
        CellRecord::Poisoned { exit } => format!("x {exit}"),
    }
}

/// Parses the tag-and-value fields written by [`record_fields`].
pub(crate) fn record_from_fields(
    fields: &mut std::str::SplitWhitespace,
) -> Result<CellRecord, String> {
    let tag = fields
        .next()
        .ok_or_else(|| "missing cell tag".to_string())?;
    match tag {
        "s" => {
            let v = fields.next().ok_or_else(|| "missing score".to_string())?;
            v.parse()
                .map(CellRecord::Score)
                .map_err(|_| format!("bad score `{v}`"))
        }
        "f" => {
            let v = fields
                .next()
                .ok_or_else(|| "missing attempts".to_string())?;
            v.parse()
                .map(|attempts| CellRecord::Failed { attempts })
                .map_err(|_| format!("bad attempts `{v}`"))
        }
        "p" => Ok(CellRecord::Panicked),
        "x" => {
            let v = fields
                .next()
                .ok_or_else(|| "missing worker exit".to_string())?;
            v.parse()
                .map(|exit| CellRecord::Poisoned { exit })
                .map_err(|_| format!("bad worker exit `{v}`"))
        }
        other => Err(format!("unknown cell tag `{other}`")),
    }
}

/// An in-memory checkpoint: header plus every terminal cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Job-input fingerprint (see [`Fnv1a`]).
    pub fingerprint: u64,
    /// Query-row count of the matrix.
    pub rows: usize,
    /// Candidate-column count of the matrix.
    pub cols: usize,
    /// `(row, col, record)` for every checkpointed cell.
    pub cells: Vec<(usize, usize, CellRecord)>,
}

/// Errors reading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number of the malformed line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The *final* record of the file is malformed — the signature of
    /// a torn write (truncation mid-append). Unlike [`Parse`], every
    /// record before it is intact, so [`load_checkpoint`] recovers by
    /// dropping the torn tail and resuming from the last intact record
    /// instead of failing the whole load. Mid-file damage stays a hard
    /// [`Parse`] error: that is bit rot, not a crash artifact, and
    /// trusting any of the file would be a guess.
    ///
    /// [`Parse`]: CheckpointError::Parse
    TornTail {
        /// 1-based line number of the torn final line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "I/O error: {e}"),
            CheckpointError::Parse { line, message } => {
                write!(f, "checkpoint line {line}: {message}")
            }
            CheckpointError::TornTail { line, message } => {
                write!(f, "checkpoint line {line} (torn final record): {message}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Writes a checkpoint in the text format.
pub fn write_checkpoint<W: Write>(w: &mut W, cp: &Checkpoint) -> io::Result<()> {
    writeln!(w, "# STS job checkpoint (DESIGN.md §3d)")?;
    writeln!(w, "checkpoint v1")?;
    writeln!(w, "fingerprint {:016x}", cp.fingerprint)?;
    writeln!(w, "dims {} {}", cp.rows, cp.cols)?;
    for &(i, j, rec) in &cp.cells {
        writeln!(w, "cell {i} {j} {}", record_fields(&rec))?;
    }
    Ok(())
}

/// Reads a checkpoint. Blank lines and `#` comments are ignored;
/// out-of-range cells are a parse error; a duplicated cell keeps the
/// last record (a crash between append-style flushes must not poison
/// the whole file). A malformed *final* record is classified as the
/// typed [`CheckpointError::TornTail`] — the torn-write signature —
/// so callers can recover the intact prefix; see [`load_checkpoint`].
pub fn read_checkpoint<R: BufRead>(r: &mut R) -> Result<Checkpoint, CheckpointError> {
    let lines: Vec<String> = r.lines().collect::<io::Result<_>>()?;
    parse_checkpoint_lines(&lines)
}

fn parse_checkpoint_lines(lines: &[String]) -> Result<Checkpoint, CheckpointError> {
    // The last line carrying content: a parse failure *there* is a
    // torn tail (truncation artifact); a failure anywhere earlier is
    // mid-file damage and stays a hard error.
    let last_meaningful = lines.iter().rposition(|l| {
        let t = l.trim();
        !t.is_empty() && !t.starts_with('#')
    });
    let mut header_seen = false;
    let mut fingerprint: Option<u64> = None;
    let mut dims: Option<(usize, usize)> = None;
    let mut cells = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parse_err = |message: String| {
            if Some(idx) == last_meaningful && message != "cell before dims" {
                CheckpointError::TornTail {
                    line: lineno,
                    message,
                }
            } else {
                CheckpointError::Parse {
                    line: lineno,
                    message,
                }
            }
        };
        let mut fields = line.split_whitespace();
        let keyword = fields.next().unwrap_or("");
        if !header_seen {
            if keyword != "checkpoint" || fields.next() != Some("v1") {
                return Err(parse_err(format!(
                    "expected `checkpoint v1` header, got `{line}`"
                )));
            }
            header_seen = true;
            continue;
        }
        match keyword {
            "fingerprint" => {
                let hex = fields
                    .next()
                    .ok_or_else(|| parse_err("missing fingerprint value".into()))?;
                fingerprint = Some(
                    u64::from_str_radix(hex, 16)
                        .map_err(|_| parse_err(format!("bad fingerprint `{hex}`")))?,
                );
            }
            "dims" => {
                let mut n = |name: &str| -> Result<usize, CheckpointError> {
                    fields
                        .next()
                        .ok_or_else(|| parse_err(format!("missing {name}")))?
                        .parse()
                        .map_err(|_| parse_err(format!("bad {name}")))
                };
                dims = Some((n("rows")?, n("cols")?));
            }
            "cell" => {
                let (rows, cols) = dims.ok_or_else(|| parse_err("cell before dims".into()))?;
                let mut n = |name: &str| -> Result<usize, CheckpointError> {
                    fields
                        .next()
                        .ok_or_else(|| parse_err(format!("missing {name}")))?
                        .parse()
                        .map_err(|_| parse_err(format!("bad {name}")))
                };
                let i = n("row")?;
                let j = n("col")?;
                if i >= rows || j >= cols {
                    return Err(parse_err(format!(
                        "cell ({i},{j}) outside dims {rows}x{cols}"
                    )));
                }
                let rec = record_from_fields(&mut fields).map_err(parse_err)?;
                cells.push((i, j, rec));
            }
            other => return Err(parse_err(format!("unknown record `{other}`"))),
        }
    }
    let fingerprint = fingerprint.ok_or_else(|| CheckpointError::Parse {
        line: 0,
        message: "missing fingerprint record".into(),
    })?;
    let (rows, cols) = dims.ok_or_else(|| CheckpointError::Parse {
        line: 0,
        message: "missing dims record".into(),
    })?;
    // Last record wins for duplicated cells.
    let mut last = std::collections::BTreeMap::new();
    for (i, j, rec) in cells {
        last.insert((i, j), rec);
    }
    Ok(Checkpoint {
        fingerprint,
        rows,
        cols,
        cells: last.into_iter().map(|((i, j), rec)| (i, j, rec)).collect(),
    })
}

/// Saves a checkpoint atomically and durably: write to `<path>.tmp`,
/// `fsync` the data, rename over `path`, then `fsync` the parent
/// directory (best effort) so the rename itself survives a host crash
/// — a job killed mid-flush leaves either the previous checkpoint or
/// the new one, never a torn file and never an un-renamed tmp the next
/// load would mistake for progress.
pub fn save_checkpoint(path: &Path, cp: &Checkpoint) -> io::Result<()> {
    save_checkpoint_with(&crate::store::FsStorage, path, cp)
}

/// [`save_checkpoint`] through an injectable [`Storage`] — the
/// disk-chaos suite's entry point for attacking checkpoint writes.
pub fn save_checkpoint_with(storage: &dyn Storage, path: &Path, cp: &Checkpoint) -> io::Result<()> {
    let _span = sts_obs::trace::span("checkpoint.save");
    let started = std::time::Instant::now();
    let result = (|| {
        let mut bytes = Vec::new();
        write_checkpoint(&mut bytes, cp)?;
        storage.write_atomic(path, &bytes)
    })();
    sts_obs::static_histogram!("runtime.checkpoint.save_ns").record_duration(started.elapsed());
    result
}

/// Loads a checkpoint from disk, first sweeping any stale `<path>.tmp`
/// left by a save that was killed between write and rename — debris
/// that would otherwise sit next to the valid checkpoint confusing
/// operators (and a later save would clobber it anyway). Swept debris
/// bumps the `runtime.checkpoint.stale_tmp_swept` counter.
///
/// A torn *final* record (truncation from a torn write) is recovered:
/// the intact prefix is returned, the torn line's cell is simply
/// recomputed by the resuming job, and the
/// `runtime.checkpoint.torn_tail_recovered` counter is bumped. Damage
/// anywhere else stays the typed hard error it always was.
pub fn load_checkpoint(path: &Path) -> Result<Checkpoint, CheckpointError> {
    load_checkpoint_with(&crate::store::FsStorage, path)
}

/// [`load_checkpoint`] through an injectable [`Storage`].
pub fn load_checkpoint_with(
    storage: &dyn Storage,
    path: &Path,
) -> Result<Checkpoint, CheckpointError> {
    let _span = sts_obs::trace::span("checkpoint.load");
    let started = std::time::Instant::now();
    let tmp = crate::store::tmp_path(path);
    if storage.exists(&tmp) {
        // Best effort: failing to remove debris must not fail the load.
        if storage.remove(&tmp).is_ok() {
            sts_obs::static_counter!("runtime.checkpoint.stale_tmp_swept").incr();
        }
    }
    let result = (|| {
        let bytes = storage.read(path)?;
        let lines: Vec<String> = bytes
            .split(|&b| b == b'\n')
            .map(|l| String::from_utf8_lossy(l).into_owned())
            .collect();
        match parse_checkpoint_lines(&lines) {
            Ok(cp) => Ok(cp),
            Err(CheckpointError::TornTail { line, message }) => {
                // Drop the torn tail and resume from the last intact
                // record. If even the prefix is unusable (e.g. the
                // header itself was torn), surface the original error.
                let mut trimmed = lines.clone();
                trimmed[line - 1].clear();
                match parse_checkpoint_lines(&trimmed) {
                    Ok(cp) => {
                        sts_obs::static_counter!("runtime.checkpoint.torn_tail_recovered").incr();
                        Ok(cp)
                    }
                    Err(_) => Err(CheckpointError::TornTail { line, message }),
                }
            }
            Err(e) => Err(e),
        }
    })();
    sts_obs::static_histogram!("runtime.checkpoint.load_ns").record_duration(started.elapsed());
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            fingerprint: 0xDEAD_BEEF_0123_4567,
            rows: 3,
            cols: 4,
            cells: vec![
                (0, 0, CellRecord::Score(0.12345678901234567)),
                (0, 3, CellRecord::Score(f64::NAN)),
                (1, 1, CellRecord::Score(-0.0)),
                (1, 2, CellRecord::Score(f64::INFINITY)),
                (2, 0, CellRecord::Failed { attempts: 3 }),
                (
                    2,
                    1,
                    CellRecord::Poisoned {
                        exit: crate::WorkerExit::Signal(6),
                    },
                ),
                (
                    2,
                    2,
                    CellRecord::Poisoned {
                        exit: crate::WorkerExit::HardTimeout,
                    },
                ),
                (2, 3, CellRecord::Panicked),
            ],
        }
    }

    /// Bit-exact cell equality (`PartialEq` on `f64` misses NaN and
    /// conflates `0.0`/`-0.0`).
    fn bit_eq(a: &CellRecord, b: &CellRecord) -> bool {
        match (a, b) {
            (CellRecord::Score(x), CellRecord::Score(y)) => x.to_bits() == y.to_bits(),
            _ => a == b,
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let cp = sample();
        let mut bytes = Vec::new();
        write_checkpoint(&mut bytes, &cp).unwrap();
        let back = read_checkpoint(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.fingerprint, cp.fingerprint);
        assert_eq!((back.rows, back.cols), (cp.rows, cp.cols));
        assert_eq!(back.cells.len(), cp.cells.len());
        for ((i1, j1, r1), (i2, j2, r2)) in back.cells.iter().zip(&cp.cells) {
            assert_eq!((i1, j1), (i2, j2));
            assert!(bit_eq(r1, r2), "({i1},{j1}): {r1:?} vs {r2:?}");
        }
    }

    #[test]
    fn random_scores_round_trip_bit_exact() {
        use sts_rng::{Rng, Xoshiro256pp};
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let cells: Vec<_> = (0..200)
            .map(|k| (k / 20, k % 20, CellRecord::Score(rng.f64().powi(7) * 1e3)))
            .collect();
        let cp = Checkpoint {
            fingerprint: 1,
            rows: 10,
            cols: 20,
            cells,
        };
        let mut bytes = Vec::new();
        write_checkpoint(&mut bytes, &cp).unwrap();
        let back = read_checkpoint(&mut bytes.as_slice()).unwrap();
        for ((_, _, a), (_, _, b)) in back.cells.iter().zip(&cp.cells) {
            assert!(bit_eq(a, b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn save_and_load_via_tmp_rename() {
        let dir = std::env::temp_dir().join("sts-runtime-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job.ckpt");
        let cp = sample();
        save_checkpoint(&path, &cp).unwrap();
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file renamed away"
        );
        let back = load_checkpoint(&path).unwrap();
        assert_eq!(back.rows, cp.rows);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_tmp_debris_is_swept_on_load() {
        let dir = std::env::temp_dir().join("sts-runtime-ckpt-sweep-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job.ckpt");
        save_checkpoint(&path, &sample()).unwrap();
        // Simulate a save killed between write and rename: a torn tmp
        // file sits next to the valid checkpoint.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, "checkpoint v1\nfingerp").unwrap();
        let back = load_checkpoint(&path).unwrap();
        assert_eq!(back.rows, sample().rows);
        assert!(!tmp.exists(), "stale tmp must be swept on load");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_cells_keep_the_last_record() {
        let text = "checkpoint v1\nfingerprint 1\ndims 2 2\ncell 0 0 s 0.5\ncell 0 0 s 0.75\n";
        let cp = read_checkpoint(&mut text.as_bytes()).unwrap();
        assert_eq!(cp.cells, vec![(0, 0, CellRecord::Score(0.75))]);
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        for (text, want) in [
            ("not a checkpoint\n", "header"),
            ("checkpoint v2\n", "header"),
            ("checkpoint v1\nfingerprint xyz\n", "bad fingerprint"),
            (
                "checkpoint v1\nfingerprint 1\ncell 0 0 s 1.0\n",
                "before dims",
            ),
            (
                "checkpoint v1\nfingerprint 1\ndims 2 2\ncell 5 0 s 1.0\n",
                "outside dims",
            ),
            (
                "checkpoint v1\nfingerprint 1\ndims 2 2\ncell 0 0 z\n",
                "unknown cell tag",
            ),
            (
                "checkpoint v1\nfingerprint 1\ndims 2 2\ncell 0 0 x\n",
                "missing worker exit",
            ),
            (
                "checkpoint v1\nfingerprint 1\ndims 2 2\ncell 0 0 x sig9\n",
                "bad worker exit",
            ),
            ("checkpoint v1\ndims 2 2\n", "missing fingerprint"),
            ("checkpoint v1\nfingerprint 1\n", "missing dims"),
        ] {
            let err = read_checkpoint(&mut text.as_bytes()).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(want), "`{text}` -> `{msg}` (wanted `{want}`)");
        }
    }

    #[test]
    fn torn_final_record_is_a_typed_error() {
        // Truncation artifacts: the final line is cut mid-record.
        for text in [
            "checkpoint v1\nfingerprint 1\ndims 2 2\ncell 0 0 s 0.5\ncell 1 1 s",
            "checkpoint v1\nfingerprint 1\ndims 2 2\ncell 0 0 s 0.5\ncell 1 1",
            "checkpoint v1\nfingerprint 1\ndims 2 2\ncell 0 0 s 0.5\ncel",
        ] {
            let err = read_checkpoint(&mut text.as_bytes()).unwrap_err();
            assert!(
                matches!(err, CheckpointError::TornTail { line: 5, .. }),
                "`{text}` -> {err:?}"
            );
            assert!(err.to_string().contains("torn final record"), "{err}");
        }
        // The same damage mid-file is NOT a torn tail: that is bit
        // rot, and recovering around it would be a guess.
        let text = "checkpoint v1\nfingerprint 1\ndims 2 2\ncell 0 0 s\ncell 1 1 s 0.5";
        let err = read_checkpoint(&mut text.as_bytes()).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Parse { line: 4, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn load_recovers_the_intact_prefix_of_a_torn_file() {
        let dir = std::env::temp_dir().join(format!("sts-ckpt-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.ckpt");
        // A file truncated mid-append: two intact records, one torn.
        std::fs::write(
            &path,
            "checkpoint v1\nfingerprint a\ndims 2 2\ncell 0 0 s 0.5\ncell 0 1 f 3\ncell 1 0 s 0.7",
        )
        .unwrap();
        // Break the final record the way a torn write would.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        let before = sts_obs::metrics::global()
            .snapshot()
            .counter("runtime.checkpoint.torn_tail_recovered")
            .unwrap_or(0);
        let cp = load_checkpoint(&path).expect("torn tail must be recovered");
        assert_eq!(cp.fingerprint, 0xa);
        assert_eq!(
            cp.cells,
            vec![
                (0, 0, CellRecord::Score(0.5)),
                (0, 1, CellRecord::Failed { attempts: 3 }),
            ],
            "the torn record is dropped, the intact prefix survives"
        );
        let after = sts_obs::metrics::global()
            .snapshot()
            .counter("runtime.checkpoint.torn_tail_recovered")
            .unwrap_or(0);
        assert!(after > before, "recovery must be visible in telemetry");
        // A file whose *header* is torn cannot be recovered.
        std::fs::write(&path, "checkpoint v1\nfingerp").unwrap();
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::TornTail { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fnv1a_is_stable_and_input_sensitive() {
        let mut a = Fnv1a::new();
        a.write(b"hello");
        // Reference FNV-1a 64 digest of "hello".
        assert_eq!(a.finish(), 0xa430_d846_80aa_bd0b);
        let mut b = Fnv1a::new();
        b.write_f64(0.0);
        let mut c = Fnv1a::new();
        c.write_f64(-0.0);
        assert_ne!(b.finish(), c.finish(), "sign of zero must matter");
    }
}
