//! Decorrelated-jitter retry backoff.

use std::time::Duration;
use sts_rng::{Rng, Xoshiro256pp};

/// The decorrelated-jitter backoff policy: each delay is drawn
/// uniformly from `[base, prev * 3]` and capped, so retries spread out
/// quickly without synchronizing (the classic thundering-herd fix —
/// correlated retries are exactly what a wedged shared resource does
/// not need).
///
/// The jitter stream is seeded, so a replayed job backs off through
/// the same delays — sleeps never affect *results*, but deterministic
/// schedules keep chaos-suite timings reproducible.
#[derive(Debug)]
pub struct DecorrelatedJitter {
    base: Duration,
    cap: Duration,
    prev: Duration,
    rng: Xoshiro256pp,
}

impl DecorrelatedJitter {
    /// A fresh backoff sequence. `base` is the first/minimum delay,
    /// `cap` the maximum ever returned.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        DecorrelatedJitter {
            base,
            cap: cap.max(base),
            prev: base,
            rng: Xoshiro256pp::seed_from_u64(seed),
        }
    }

    /// The next delay to sleep before retrying.
    pub fn next_delay(&mut self) -> Duration {
        let base = self.base.as_nanos() as u64;
        let hi = (self.prev.as_nanos() as u64)
            .saturating_mul(3)
            .max(base + 1);
        let nanos = self.rng.random_range(base..hi);
        let delay = Duration::from_nanos(nanos).min(self.cap);
        self.prev = delay.max(self.base);
        delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_stay_within_base_and_cap() {
        let base = Duration::from_micros(50);
        let cap = Duration::from_millis(5);
        let mut j = DecorrelatedJitter::new(base, cap, 42);
        for _ in 0..1000 {
            let d = j.next_delay();
            assert!(d >= base, "{d:?} < base");
            assert!(d <= cap, "{d:?} > cap");
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let mk = || DecorrelatedJitter::new(Duration::from_micros(10), Duration::from_millis(2), 7);
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..64 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn delays_grow_from_the_base() {
        let mut j = DecorrelatedJitter::new(Duration::from_millis(1), Duration::from_secs(1), 3);
        let first = j.next_delay();
        // After many steps the running max must have left the base
        // neighborhood (growth is stochastic but bounded below by the
        // uniform draw's upper bound tripling).
        let max = (0..100).map(|_| j.next_delay()).max().unwrap();
        assert!(max > first, "backoff never grew: {first:?} -> {max:?}");
    }

    #[test]
    fn degenerate_cap_below_base_is_clamped() {
        let mut j = DecorrelatedJitter::new(Duration::from_millis(2), Duration::from_millis(1), 1);
        let d = j.next_delay();
        assert_eq!(d, Duration::from_millis(2));
    }
}
