//! Decorrelated-jitter retry backoff.

use std::time::Duration;
use sts_rng::{Rng, Xoshiro256pp};

/// The decorrelated-jitter backoff policy: each delay is drawn
/// uniformly from `[base, prev * 3]` and capped, so retries spread out
/// quickly without synchronizing (the classic thundering-herd fix —
/// correlated retries are exactly what a wedged shared resource does
/// not need).
///
/// The jitter stream is seeded, so a replayed job backs off through
/// the same delays — sleeps never affect *results*, but deterministic
/// schedules keep chaos-suite timings reproducible.
#[derive(Debug)]
pub struct DecorrelatedJitter {
    base: Duration,
    cap: Duration,
    prev: Duration,
    rng: Xoshiro256pp,
}

impl DecorrelatedJitter {
    /// A fresh backoff sequence. `base` is the first/minimum delay,
    /// `cap` the maximum ever returned.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        DecorrelatedJitter {
            base,
            cap: cap.max(base),
            prev: base,
            rng: Xoshiro256pp::seed_from_u64(seed),
        }
    }

    /// The next delay to sleep before retrying.
    ///
    /// Arithmetic saturates end to end (`u128 → u64` clamps, a
    /// saturating triple, a saturating `+1`), so even a restart storm
    /// that walks the sequence for days — or degenerate second-scale
    /// bases — can never overflow or exceed the cap.
    pub fn next_delay(&mut self) -> Duration {
        let base = u64::try_from(self.base.as_nanos()).unwrap_or(u64::MAX);
        let hi = u64::try_from(self.prev.as_nanos())
            .unwrap_or(u64::MAX)
            .saturating_mul(3)
            .max(base.saturating_add(1));
        // `base == hi` only when base saturated at u64::MAX — the
        // range would be empty, so skip the draw.
        let nanos = if base >= hi {
            base
        } else {
            self.rng.random_range(base..hi)
        };
        let delay = Duration::from_nanos(nanos).min(self.cap);
        self.prev = delay.max(self.base);
        delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_stay_within_base_and_cap() {
        let base = Duration::from_micros(50);
        let cap = Duration::from_millis(5);
        let mut j = DecorrelatedJitter::new(base, cap, 42);
        for _ in 0..1000 {
            let d = j.next_delay();
            assert!(d >= base, "{d:?} < base");
            assert!(d <= cap, "{d:?} > cap");
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let mk = || DecorrelatedJitter::new(Duration::from_micros(10), Duration::from_millis(2), 7);
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..64 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn restart_replays_the_identical_schedule_from_the_start() {
        // A crashed-and-restarted client reconstructs its backoff from
        // the same (base, cap, seed) triple. The replayed schedule must
        // match the original walk element-for-element — including past
        // the point where the first incarnation died — because chaos
        // replays only stay reproducible if sleeps do.
        let mk =
            || DecorrelatedJitter::new(Duration::from_micros(25), Duration::from_millis(8), 77);
        let mut first_life = mk();
        let before_crash: Vec<Duration> = (0..10).map(|_| first_life.next_delay()).collect();
        // "Restart": a brand-new instance, same constructor inputs.
        let mut second_life = mk();
        let replayed: Vec<Duration> = (0..40).map(|_| second_life.next_delay()).collect();
        assert_eq!(&replayed[..10], &before_crash[..]);
        // And a third incarnation agrees with the second beyond the
        // first's horizon.
        let mut third_life = mk();
        let again: Vec<Duration> = (0..40).map(|_| third_life.next_delay()).collect();
        assert_eq!(again, replayed);
    }

    #[test]
    fn golden_schedule_is_pinned() {
        // First five delays for (base=1ms, cap=1s, seed=0xD15EA5E),
        // in nanoseconds. Any drift in the RNG stream, the draw order,
        // or the clamping arithmetic shows up here as an exact diff.
        let mut j =
            DecorrelatedJitter::new(Duration::from_millis(1), Duration::from_secs(1), 0xD15EA5E);
        let got: Vec<u64> = (0..5)
            .map(|_| u64::try_from(j.next_delay().as_nanos()).unwrap())
            .collect();
        let want = [2_111_918u64, 2_101_095, 2_041_500, 5_967_984, 4_172_983];
        assert_eq!(got, want.to_vec(), "schedule drifted: {got:?}");
    }

    #[test]
    fn delays_grow_from_the_base() {
        let mut j = DecorrelatedJitter::new(Duration::from_millis(1), Duration::from_secs(1), 3);
        let first = j.next_delay();
        // After many steps the running max must have left the base
        // neighborhood (growth is stochastic but bounded below by the
        // uniform draw's upper bound tripling).
        let max = (0..100).map(|_| j.next_delay()).max().unwrap();
        assert!(max > first, "backoff never grew: {first:?} -> {max:?}");
    }

    #[test]
    fn restart_storm_never_overflows_or_exceeds_the_cap() {
        // A supervisor restarting workers in a tight loop for a long
        // time walks deep into the sequence where prev*3 would
        // overflow without saturation. Every delay must stay inside
        // [base, cap] for the whole storm.
        let base = Duration::from_millis(1);
        let cap = Duration::from_secs(30);
        let mut j = DecorrelatedJitter::new(base, cap, 0xBAD_5EED);
        for step in 0..100_000 {
            let d = j.next_delay();
            assert!(d >= base && d <= cap, "step {step}: {d:?}");
        }
    }

    #[test]
    fn extreme_durations_saturate_instead_of_overflowing() {
        // base/cap whose nanosecond counts exceed u64 (as_nanos() is
        // u128): the u64 clamps must saturate, not truncate — a
        // truncated base could produce a near-zero delay and a
        // truncated prev could wrap the triple.
        let huge = Duration::from_secs(u64::MAX / 2);
        let mut j = DecorrelatedJitter::new(huge, Duration::MAX, 9);
        for _ in 0..64 {
            // The base saturates to u64::MAX nanoseconds (~584 years);
            // truncation instead would wrap to an arbitrary small
            // delay.
            let d = j.next_delay();
            assert_eq!(d, Duration::from_nanos(u64::MAX), "{d:?}");
        }
        // A huge cap with a tiny base must still be reachable without
        // panicking anywhere in the walk.
        let mut j = DecorrelatedJitter::new(Duration::from_nanos(1), Duration::MAX, 10);
        for _ in 0..10_000 {
            let _ = j.next_delay();
        }
    }

    #[test]
    fn degenerate_cap_below_base_is_clamped() {
        let mut j = DecorrelatedJitter::new(Duration::from_millis(2), Duration::from_millis(1), 1);
        let d = j.next_delay();
        assert_eq!(d, Duration::from_millis(2));
    }
}
