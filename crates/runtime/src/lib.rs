#![warn(missing_docs)]
//! # sts-runtime — supervised batch runtime for similarity jobs
//!
//! The all-pairs STS matrix is the workload the production system
//! actually serves, and at scale its dominant failure mode is
//! operational, not numerical: a stripe wedges on a pathological pair,
//! a job is killed at 90% with all progress lost, a host has fewer
//! cores than assumed. This crate supplies the job-lifecycle machinery
//! that makes a long-running batch *supervised* rather than fired and
//! forgotten:
//!
//! * [`CancelToken`] — cooperative, `AtomicBool`-backed cancellation,
//!   checked by workers at every pair-chunk boundary;
//! * [`Budget`] / [`Deadline`] — wall-clock and max-pairs limits that
//!   stop a job cleanly with every completed cell intact;
//! * [`PairSpace`] / [`PairChunk`] — the shared pair-chunking iterator
//!   used by every matrix path (strict, degraded, supervised), so pair
//!   iteration logic exists exactly once;
//! * [`thread_count`] — worker-count selection from
//!   `std::thread::available_parallelism` with an `STS_THREADS`
//!   override (see the function docs for the fallback rules);
//! * [`pool::run_supervised`] — a std-only worker pool that deals
//!   chunks from a shared queue, retries panicked chunks with
//!   decorrelated-jitter backoff ([`DecorrelatedJitter`]), and runs a
//!   watchdog that marks chunks exceeding a per-chunk soft timeout;
//! * [`checkpoint`] — a zero-dependency line-based checkpoint format
//!   (same style as the `sts-traj` `io` module) with a header
//!   fingerprint, so a crashed or cancelled job resumes losing at most
//!   one flush interval;
//! * [`store`] — the injectable [`Storage`] trait behind every durable
//!   artifact (checkpoints, tiles), with [`FsStorage`] owning the
//!   tmp-write → fsync → rename discipline; the disk-chaos suite in
//!   `sts-robust` swaps in a fault-injecting implementation;
//! * [`tile`] — per-tile spill files for the out-of-core matrix
//!   engine: job-fingerprint bound, payload-digest verified, trailer
//!   closed, so torn writes and bit rot are detected on load instead
//!   of silently read back;
//! * [`JobStats`] / [`JobState`] — timing, retry and completion
//!   accounting for the job report surfaced by `sts-core`;
//! * [`FaultPlan`] — deterministic, seeded fault injection (panicking
//!   and slow cells), the failpoint-style hook the chaos suite uses to
//!   drive operational faults through a *real* job via `sts-core`'s
//!   `JobConfig::fault`.
//!
//! The crate is deliberately independent of the measure: it moves
//! chunks and cells, never trajectories. `sts-core` builds the
//! similarity-specific job (`Sts::similarity_matrix_supervised`) on
//! top of these primitives; `sts-eval` and the chaos suite in
//! `sts-robust` drive them end to end.
//!
//! Everything here is std-only (the workspace builds offline with zero
//! external crates); the only workspace dependency is `sts-rng`, which
//! seeds the deterministic backoff jitter.

mod backoff;
mod budget;
mod cancel;
pub mod checkpoint;
mod chunk;
mod exit;
pub mod fault;
pub mod lease;
pub mod pool;
mod stats;
pub mod store;
pub mod tile;

pub use backoff::DecorrelatedJitter;
pub use budget::{Budget, Deadline, StopReason};
pub use cancel::CancelToken;
pub use checkpoint::{CellRecord, Checkpoint, CheckpointError, Fnv1a};
pub use chunk::{PairChunk, PairSpace};
pub use exit::{ParseWorkerExitError, WorkerExit};
pub use fault::{Fault, FaultPlan};
pub use lease::{CommitOutcome, LeaseTable};
pub use pool::{ChunkStatus, PoolConfig, PoolRun, RetryPolicy};
pub use stats::{IsolateStats, JobState, JobStats, ShardStats, TileStats};
pub use store::{sweep_stale_tmp, FsStorage, Storage};
pub use tile::{sweep_quarantine, TileData, TileError, TileStore, TileSweep};

/// Number of worker threads to use for a workload with `cap` parallel
/// units (chunks, rows, …).
///
/// Selection order:
/// 1. the `STS_THREADS` environment variable, when set to an integer
///    ≥ 1 (a service operator pinning a job to a core budget);
/// 2. [`std::thread::available_parallelism`] — the actual host, not a
///    hard-coded stripe count;
/// 3. `1` when the platform cannot report its parallelism (the
///    documented fallback: correctness never depends on thread count,
///    so degrading to sequential is always safe).
///
/// The result is clamped to `[1, max(cap, 1)]` — spawning more workers
/// than there are units only adds scheduling noise.
pub fn thread_count(cap: usize) -> usize {
    let configured = std::env::var("STS_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1);
    let n = configured.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    n.min(cap.max(1))
}

/// Number of shard workers to spawn for a workload with `cap` parallel
/// units (tiles). Mirrors [`thread_count`] exactly, but reads the
/// `STS_WORKERS` environment variable instead: socket workers are
/// whole processes, so operators size the fleet independently of the
/// in-process thread pool.
///
/// Selection order:
/// 1. `STS_WORKERS`, when set to an integer ≥ 1 (invalid, empty and
///    zero values are ignored, as with `STS_THREADS`);
/// 2. [`std::thread::available_parallelism`];
/// 3. `1` when the platform cannot report its parallelism.
///
/// The result is clamped to `[1, max(cap, 1)]`.
pub fn worker_count(cap: usize) -> usize {
    let configured = std::env::var("STS_WORKERS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1);
    let n = configured.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    n.min(cap.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_is_clamped_to_cap() {
        // Whatever the host reports, the cap wins when smaller.
        assert_eq!(thread_count(1), 1);
        assert!(thread_count(4) <= 4);
        assert!(thread_count(usize::MAX) >= 1);
        // A zero cap still yields one worker (a job with no chunks
        // spawns a pool that immediately drains).
        assert_eq!(thread_count(0), 1);
    }

    #[test]
    fn worker_count_env_override_and_fallbacks() {
        // One test mutates the process-global variable serially;
        // nothing else in this crate reads STS_WORKERS.
        std::env::set_var("STS_WORKERS", "3");
        assert_eq!(worker_count(100), 3);
        assert_eq!(worker_count(2), 2, "cap still clamps the override");
        // Zero is not a fleet: ignored, like STS_THREADS=0.
        std::env::set_var("STS_WORKERS", "0");
        assert!(worker_count(100) >= 1);
        // Garbage is ignored, not a panic.
        for bad in ["four", "", " ", "-2", "3.5"] {
            std::env::set_var("STS_WORKERS", bad);
            assert!(worker_count(100) >= 1, "invalid `{bad}` must fall back");
        }
        // Whitespace around a valid value is tolerated.
        std::env::set_var("STS_WORKERS", " 5 ");
        assert_eq!(worker_count(100), 5);
        std::env::remove_var("STS_WORKERS");
        assert!(worker_count(100) >= 1);
        assert_eq!(worker_count(0), 1);
    }
}
