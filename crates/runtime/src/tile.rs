//! Durable matrix tiles: the out-of-core unit of the tiled job engine.
//!
//! A *tile* is one [`PairChunk`](crate::PairChunk)-sized slab of the
//! pair space, spilled to its own file once every cell in it has a
//! terminal record. The format is the workspace's line-based text
//! style, and it is verified end to end on every load:
//!
//! ```text
//! # STS matrix tile (DESIGN.md §3h)
//! tile v1
//! job <16 hex digits>          # job-input fingerprint (as checkpoints)
//! tile <id> <start> <len>      # which slab of the pair space this is
//! payload <16 hex digits>      # FNV-1a over the cell-line bytes below
//! cell <lin> s <score>         # records: same tags as checkpoints
//! cell <lin> f <attempts>      # (s/f/p/x; quarantined cells are
//! cell <lin> x <exit>          #  re-derived, never stored)
//! end <n_cells>                # trailer: number of cell lines above
//! ```
//!
//! Three independent integrity checks make silent corruption
//! structurally impossible to read back:
//!
//! 1. the `job` fingerprint binds the tile to its inputs (a tile from
//!    another corpus is rejected, exactly like a checkpoint);
//! 2. the `payload` digest covers every cell-line byte, so a flipped
//!    bit anywhere in the data fails the load;
//! 3. the `end <n>` trailer closes the file, so a torn (truncated)
//!    write — the classic crash-mid-spill artifact — fails the load
//!    even when the truncation lands exactly on a line boundary.
//!
//! A failed check is a typed [`TileError::Corrupt`]; the engine
//! quarantines the file aside (`.corrupt` suffix — evidence, not
//! garbage) and recomputes the tile. Loads never guess.
//!
//! All I/O goes through the injectable [`Storage`] trait, which is how
//! the `sts-robust` disk-chaos suite drives torn writes, bit flips,
//! ENOSPC and stale tmp files through this exact code.

use crate::checkpoint::{record_fields, record_from_fields, CellRecord, Fnv1a};
use crate::store::{sweep_stale_tmp, Storage};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// One spilled tile: the slab geometry plus every terminal cell
/// record, keyed by *absolute* linear pair index.
#[derive(Debug, Clone, PartialEq)]
pub struct TileData {
    /// Tile id (the chunk id in the tile-sized chunking of the space).
    pub id: usize,
    /// First linear pair index covered.
    pub start: usize,
    /// Number of pairs covered.
    pub len: usize,
    /// `(lin, record)` for every terminal cell, ascending by `lin`.
    /// Cells whose trajectory is quarantined carry no record — the
    /// engine re-derives quarantine from preparation, as checkpoints
    /// do.
    pub cells: Vec<(usize, CellRecord)>,
}

/// Errors loading a tile.
#[derive(Debug)]
pub enum TileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The tile file failed an integrity check (truncated, bit-flipped,
    /// wrong job, wrong slab). The payload must be recomputed.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Which check failed.
        reason: String,
    },
}

impl fmt::Display for TileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileError::Io(e) => write!(f, "tile I/O error: {e}"),
            TileError::Corrupt { path, reason } => {
                write!(f, "corrupt tile {}: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for TileError {}

impl From<io::Error> for TileError {
    fn from(e: io::Error) -> Self {
        TileError::Io(e)
    }
}

/// Serializes a tile to the text format. Infallible (writes to memory);
/// durability is the caller's [`Storage::write_atomic`].
pub fn encode_tile(job_fingerprint: u64, tile: &TileData) -> Vec<u8> {
    let mut cells_text = String::new();
    for (lin, rec) in &tile.cells {
        cells_text.push_str("cell ");
        cells_text.push_str(&lin.to_string());
        cells_text.push(' ');
        cells_text.push_str(&record_fields(rec));
        cells_text.push('\n');
    }
    let mut digest = Fnv1a::new();
    digest.write(cells_text.as_bytes());
    let mut out = String::new();
    out.push_str("# STS matrix tile (DESIGN.md \u{a7}3h)\n");
    out.push_str("tile v1\n");
    out.push_str(&format!("job {:016x}\n", job_fingerprint));
    out.push_str(&format!("tile {} {} {}\n", tile.id, tile.start, tile.len));
    out.push_str(&format!("payload {:016x}\n", digest.finish()));
    out.push_str(&cells_text);
    out.push_str(&format!("end {}\n", tile.cells.len()));
    out.into_bytes()
}

/// Parses and fully verifies a tile against the slab the caller
/// expects. Any deviation — torn tail, flipped byte, wrong job
/// fingerprint, wrong geometry, out-of-slab or duplicate cell —
/// returns `Err` with the failed check; the bytes are never partially
/// trusted.
pub fn decode_tile(
    bytes: &[u8],
    job_fingerprint: u64,
    id: usize,
    start: usize,
    len: usize,
) -> Result<TileData, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "not valid UTF-8".to_string())?;
    // A complete tile always ends `end <n>\n`; a file cut anywhere —
    // even one byte short — must fail, so the trailer's newline is
    // part of the contract.
    if !text.ends_with('\n') {
        return Err("truncated: missing final newline".to_string());
    }
    let mut lines = text.split('\n');
    // Header: comments/blank lines tolerated until `tile v1`.
    loop {
        let line = lines.next().ok_or("missing `tile v1` header")?.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line != "tile v1" {
            return Err(format!("expected `tile v1` header, got `{line}`"));
        }
        break;
    }
    let field = |line: Option<&str>, keyword: &str| -> Result<String, String> {
        let line = line
            .ok_or_else(|| format!("missing `{keyword}` record"))?
            .trim();
        line.strip_prefix(keyword)
            .and_then(|rest| rest.strip_prefix(' '))
            .map(|rest| rest.to_string())
            .ok_or_else(|| format!("expected `{keyword} ...`, got `{line}`"))
    };
    let job_hex = field(lines.next(), "job")?;
    let job = u64::from_str_radix(job_hex.trim(), 16)
        .map_err(|_| format!("bad job fingerprint `{job_hex}`"))?;
    if job != job_fingerprint {
        return Err(format!(
            "job fingerprint {job:016x} does not match inputs {job_fingerprint:016x}"
        ));
    }
    let geom = field(lines.next(), "tile")?;
    let nums: Vec<usize> = geom
        .split_whitespace()
        .map(|s| s.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|_| format!("bad tile geometry `{geom}`"))?;
    if nums.len() != 3 {
        return Err(format!("bad tile geometry `{geom}`"));
    }
    if nums != [id, start, len] {
        return Err(format!(
            "tile geometry {}/{}/{} does not match expected {id}/{start}/{len}",
            nums[0], nums[1], nums[2]
        ));
    }
    let payload_hex = field(lines.next(), "payload")?;
    let payload = u64::from_str_radix(payload_hex.trim(), 16)
        .map_err(|_| format!("bad payload digest `{payload_hex}`"))?;

    // Cells region: exact bytes, re-hashed as read. No comments, no
    // blank lines — we wrote this file; anything unexpected is damage.
    let mut digest = Fnv1a::new();
    let mut cells: Vec<(usize, CellRecord)> = Vec::new();
    let mut seen = vec![false; len];
    let end_count = loop {
        let line = lines.next().ok_or("truncated: missing `end` trailer")?;
        if let Some(rest) = line.strip_prefix("end ") {
            break rest
                .trim()
                .parse::<usize>()
                .map_err(|_| format!("bad `end` count `{rest}`"))?;
        }
        digest.write(line.as_bytes());
        digest.write(b"\n");
        let rest = line
            .strip_prefix("cell ")
            .ok_or_else(|| format!("unexpected line in cell region: `{line}`"))?;
        let mut fields = rest.split_whitespace();
        let lin: usize = fields
            .next()
            .ok_or("cell line missing index")?
            .parse()
            .map_err(|_| format!("bad cell index in `{line}`"))?;
        if lin < start || lin >= start + len {
            return Err(format!(
                "cell {lin} outside tile slab [{start}, {})",
                start + len
            ));
        }
        if std::mem::replace(&mut seen[lin - start], true) {
            return Err(format!("duplicate cell {lin}"));
        }
        let rec = record_from_fields(&mut fields)?;
        if fields.next().is_some() {
            return Err(format!("trailing fields in `{line}`"));
        }
        cells.push((lin, rec));
    };
    if end_count != cells.len() {
        return Err(format!(
            "trailer says {end_count} cell(s) but {} present (torn write)",
            cells.len()
        ));
    }
    if digest.finish() != payload {
        return Err(format!(
            "payload digest {:016x} does not match header {payload:016x} (corrupt data)",
            digest.finish()
        ));
    }
    // Nothing after the trailer but the final newline's empty split.
    for line in lines {
        if !line.trim().is_empty() {
            return Err(format!("trailing garbage after `end`: `{line}`"));
        }
    }
    cells.sort_by_key(|&(lin, _)| lin);
    Ok(TileData {
        id,
        start,
        len,
        cells,
    })
}

/// Quarantined `.tile.corrupt` files kept for forensics: the newest
/// this many survive every sweep (unless they also age out).
pub const CORRUPT_KEEP_MAX: usize = 8;

/// Quarantined `.tile.corrupt` files older than this are swept even
/// when the count cap has room — day-old evidence has been looked at
/// or never will be.
pub const CORRUPT_KEEP_AGE: std::time::Duration = std::time::Duration::from_secs(24 * 60 * 60);

/// What [`TileStore::open`] cleaned out of the tile directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TileSweep {
    /// Orphaned `*.tmp` files from interrupted spills.
    pub stale_tmp: usize,
    /// Aged- or counted-out `*.tile.corrupt` quarantine files.
    pub corrupt: usize,
}

/// Sweeps quarantined `*.tile.corrupt` files beyond the retention
/// policy: everything older than [`CORRUPT_KEEP_AGE`], and the oldest
/// overflow beyond [`CORRUPT_KEEP_MAX`]. Files whose age the backend
/// cannot report are treated as fresh (count cap only). Bumps the
/// `runtime.tile.corrupt_swept` counter; individual remove failures
/// are ignored — this is hygiene, not correctness.
pub fn sweep_quarantine(storage: &dyn Storage, dir: &Path) -> io::Result<usize> {
    let mut corrupt: Vec<(Option<std::time::SystemTime>, PathBuf)> = storage
        .list(dir)?
        .into_iter()
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().ends_with(".tile.corrupt"))
        })
        .map(|p| (storage.modified(&p).ok().flatten(), p))
        .collect();
    // Oldest first; unknown ages sort last (newest) so they are only
    // ever count-swept, never age-swept.
    corrupt.sort_by(|a, b| match (&a.0, &b.0) {
        (Some(x), Some(y)) => x.cmp(y).then_with(|| a.1.cmp(&b.1)),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => a.1.cmp(&b.1),
    });
    let now = std::time::SystemTime::now();
    let overflow = corrupt.len().saturating_sub(CORRUPT_KEEP_MAX);
    let mut swept = 0usize;
    for (i, (mtime, path)) in corrupt.iter().enumerate() {
        let aged_out = mtime
            .and_then(|t| now.duration_since(t).ok())
            .is_some_and(|age| age > CORRUPT_KEEP_AGE);
        if (i < overflow || aged_out) && storage.remove(path).is_ok() {
            swept += 1;
        }
    }
    if swept > 0 {
        sts_obs::static_counter!("runtime.tile.corrupt_swept").add(swept as u64);
    }
    Ok(swept)
}

/// A directory of tiles for one job, bound to the job's input
/// fingerprint. All I/O goes through the injected [`Storage`].
pub struct TileStore<'s> {
    storage: &'s dyn Storage,
    dir: PathBuf,
    job_fingerprint: u64,
}

impl<'s> TileStore<'s> {
    /// Opens (creating if needed) the tile directory and sweeps debris:
    /// orphaned `*.tmp` files from interrupted spills, and quarantined
    /// `*.tile.corrupt` files beyond the retention policy
    /// ([`CORRUPT_KEEP_MAX`] newest kept, [`CORRUPT_KEEP_AGE`] max
    /// age). Returns the store and what was swept.
    pub fn open(
        storage: &'s dyn Storage,
        dir: &Path,
        job_fingerprint: u64,
    ) -> io::Result<(Self, TileSweep)> {
        storage.create_dir_all(dir)?;
        let swept = TileSweep {
            stale_tmp: sweep_stale_tmp(storage, dir)?,
            corrupt: sweep_quarantine(storage, dir)?,
        };
        Ok((
            TileStore {
                storage,
                dir: dir.to_path_buf(),
                job_fingerprint,
            },
            swept,
        ))
    }

    /// The file backing tile `id`.
    pub fn tile_path(&self, id: usize) -> PathBuf {
        self.dir.join(format!("tile-{id:06}.tile"))
    }

    /// Spills a completed tile atomically and durably.
    pub fn save(&self, tile: &TileData) -> io::Result<()> {
        let _span = sts_obs::trace::span("tile.save");
        let started = std::time::Instant::now();
        let bytes = encode_tile(self.job_fingerprint, tile);
        let result = self.storage.write_atomic(&self.tile_path(tile.id), &bytes);
        sts_obs::static_histogram!("runtime.tile.save_ns").record_duration(started.elapsed());
        if result.is_ok() {
            sts_obs::static_counter!("runtime.tile.saved").incr();
        }
        result
    }

    /// Loads and verifies tile `id` against the slab `(start, len)`.
    /// `Ok(None)` means the tile has not been spilled; `Corrupt` means
    /// the file exists but failed verification and must be recomputed
    /// (the `runtime.tile.corrupt_detected` counter is bumped — a
    /// corrupt tile is *never* silently read back).
    pub fn load(&self, id: usize, start: usize, len: usize) -> Result<Option<TileData>, TileError> {
        let _span = sts_obs::trace::span("tile.load");
        let path = self.tile_path(id);
        if !self.storage.exists(&path) {
            return Ok(None);
        }
        let bytes = self.storage.read(&path)?;
        match decode_tile(&bytes, self.job_fingerprint, id, start, len) {
            Ok(tile) => {
                sts_obs::static_counter!("runtime.tile.loaded").incr();
                Ok(Some(tile))
            }
            Err(reason) => {
                sts_obs::static_counter!("runtime.tile.corrupt_detected").incr();
                Err(TileError::Corrupt { path, reason })
            }
        }
    }

    /// Moves a corrupt tile aside to `<file>.corrupt` so the evidence
    /// survives the recompute; if even the rename fails, removes it so
    /// the fresh spill is not blocked. Best effort by design.
    pub fn quarantine(&self, id: usize) -> PathBuf {
        let path = self.tile_path(id);
        let aside = path.with_extension("tile.corrupt");
        if self.storage.rename(&path, &aside).is_err() {
            let _ = self.storage.remove(&path);
        }
        sts_obs::static_counter!("runtime.tile.quarantined").incr();
        aside
    }

    /// Removes every `tile-*.tile` file (a completed job cleaning up
    /// after itself). Quarantined `.corrupt` files are kept.
    pub fn remove_all_tiles(&self) -> io::Result<usize> {
        let mut removed = 0usize;
        for path in self.storage.list(&self.dir)? {
            let is_tile = path.extension().is_some_and(|e| e == "tile")
                && path
                    .file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with("tile-"));
            if is_tile && self.storage.remove(&path).is_ok() {
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::FsStorage;
    use crate::WorkerExit;

    fn sample() -> TileData {
        TileData {
            id: 3,
            start: 12,
            len: 6,
            cells: vec![
                (12, CellRecord::Score(0.12345678901234567)),
                (13, CellRecord::Score(f64::NAN)),
                (14, CellRecord::Score(-0.0)),
                (15, CellRecord::Failed { attempts: 3 }),
                (16, CellRecord::Panicked),
                (
                    17,
                    CellRecord::Poisoned {
                        exit: WorkerExit::Signal(9),
                    },
                ),
            ],
        }
    }

    fn bit_eq(a: &CellRecord, b: &CellRecord) -> bool {
        match (a, b) {
            (CellRecord::Score(x), CellRecord::Score(y)) => x.to_bits() == y.to_bits(),
            _ => a == b,
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let tile = sample();
        let bytes = encode_tile(0xFEED, &tile);
        let back = decode_tile(&bytes, 0xFEED, 3, 12, 6).unwrap();
        assert_eq!(back.cells.len(), tile.cells.len());
        for ((l1, r1), (l2, r2)) in back.cells.iter().zip(&tile.cells) {
            assert_eq!(l1, l2);
            assert!(bit_eq(r1, r2), "{r1:?} vs {r2:?}");
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        // A torn write can stop at any byte; every prefix must fail
        // verification — including prefixes that end exactly on a line
        // boundary, which only the `end` trailer catches.
        let bytes = encode_tile(0xFEED, &sample());
        for cut in 0..bytes.len() {
            let result = decode_tile(&bytes[..cut], 0xFEED, 3, 12, 6);
            assert!(result.is_err(), "truncation at byte {cut} must be detected");
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected_or_harmless() {
        // Flip one bit in every byte position. The decode must either
        // reject the file or produce records bit-identical to the
        // original — silently *different* data is the one forbidden
        // outcome. (Flips in the leading comment are harmless.)
        let tile = sample();
        let bytes = encode_tile(0xFEED, &tile);
        for pos in 0..bytes.len() {
            for bit in [0x01u8, 0x20u8, 0x80u8] {
                let mut mangled = bytes.clone();
                mangled[pos] ^= bit;
                match decode_tile(&mangled, 0xFEED, 3, 12, 6) {
                    Err(_) => {}
                    Ok(back) => {
                        assert_eq!(back.cells.len(), tile.cells.len(), "flip at {pos}");
                        for ((l1, r1), (l2, r2)) in back.cells.iter().zip(&tile.cells) {
                            assert_eq!(l1, l2, "flip at byte {pos} bit {bit:#x}");
                            assert!(
                                bit_eq(r1, r2),
                                "flip at byte {pos} bit {bit:#x}: {r1:?} vs {r2:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn wrong_job_or_slab_is_rejected() {
        let bytes = encode_tile(0xFEED, &sample());
        assert!(decode_tile(&bytes, 0xBEEF, 3, 12, 6)
            .unwrap_err()
            .contains("fingerprint"));
        assert!(decode_tile(&bytes, 0xFEED, 4, 12, 6)
            .unwrap_err()
            .contains("geometry"));
        assert!(decode_tile(&bytes, 0xFEED, 3, 12, 8)
            .unwrap_err()
            .contains("geometry"));
    }

    #[test]
    fn sparse_tiles_round_trip() {
        // Quarantined cells carry no record: a tile may legally hold
        // fewer cells than its slab length.
        let tile = TileData {
            id: 0,
            start: 0,
            len: 10,
            cells: vec![(2, CellRecord::Score(1.5)), (7, CellRecord::Score(2.5))],
        };
        let bytes = encode_tile(7, &tile);
        let back = decode_tile(&bytes, 7, 0, 0, 10).unwrap();
        assert_eq!(back.cells, tile.cells);
    }

    #[test]
    fn store_spill_load_quarantine_cycle() {
        let dir = std::env::temp_dir().join(format!("sts-tile-store-{}", std::process::id()));
        let storage = FsStorage;
        let (store, swept) = TileStore::open(&storage, &dir, 0xFEED).unwrap();
        assert_eq!(swept, TileSweep::default());
        let tile = sample();
        store.save(&tile).unwrap();
        let back = store.load(3, 12, 6).unwrap().expect("tile present");
        assert_eq!(back.cells.len(), tile.cells.len());
        // Missing tile is None, not an error.
        assert!(store.load(9, 0, 4).unwrap().is_none());
        // Corrupt the file on disk: load must detect and refuse.
        let path = store.tile_path(3);
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 20] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load(3, 12, 6),
            Err(TileError::Corrupt { .. })
        ));
        let aside = store.quarantine(3);
        assert!(aside.exists(), "quarantined evidence kept");
        assert!(store.load(3, 12, 6).unwrap().is_none(), "slot now free");
        // Stale tmp debris is swept on the next open.
        std::fs::write(dir.join("tile-000004.tmp"), b"torn").unwrap();
        let (_store2, swept2) = TileStore::open(&storage, &dir, 0xFEED).unwrap();
        assert_eq!(swept2.stale_tmp, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_sweep_caps_count_keeping_the_newest() {
        let dir = std::env::temp_dir().join(format!("sts-tile-qsweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let storage = FsStorage;
        // CORRUPT_KEEP_MAX + 3 quarantine files with strictly older
        // mtimes for lower ids, plus a live tile that must survive.
        std::fs::write(dir.join("tile-000099.tile"), b"live").unwrap();
        let now = std::time::SystemTime::now();
        for i in 0..CORRUPT_KEEP_MAX + 3 {
            let path = dir.join(format!("tile-{i:06}.tile.corrupt"));
            std::fs::write(&path, b"evidence").unwrap();
            let age = std::time::Duration::from_secs(600 - 60 * i as u64);
            std::fs::File::options()
                .write(true)
                .open(&path)
                .unwrap()
                .set_modified(now - age)
                .unwrap();
        }
        let swept = sweep_quarantine(&storage, &dir).unwrap();
        assert_eq!(swept, 3, "overflow beyond the cap is swept");
        for i in 0..3 {
            assert!(
                !dir.join(format!("tile-{i:06}.tile.corrupt")).exists(),
                "oldest file {i} must be swept"
            );
        }
        for i in 3..CORRUPT_KEEP_MAX + 3 {
            assert!(
                dir.join(format!("tile-{i:06}.tile.corrupt")).exists(),
                "newest file {i} must be kept"
            );
        }
        assert!(
            dir.join("tile-000099.tile").exists(),
            "live tiles untouched"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_sweep_ages_out_old_evidence_and_counts() {
        let dir = std::env::temp_dir().join(format!("sts-tile-qage-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let storage = FsStorage;
        // Two fresh files (under the count cap) plus one backdated past
        // the age cap: only the old one goes.
        std::fs::write(dir.join("tile-000000.tile.corrupt"), b"old").unwrap();
        std::fs::write(dir.join("tile-000001.tile.corrupt"), b"new").unwrap();
        std::fs::write(dir.join("tile-000002.tile.corrupt"), b"new").unwrap();
        std::fs::File::options()
            .write(true)
            .open(dir.join("tile-000000.tile.corrupt"))
            .unwrap()
            .set_modified(std::time::SystemTime::now() - CORRUPT_KEEP_AGE * 2)
            .unwrap();
        let before = sts_obs::metrics::global()
            .snapshot()
            .counter("runtime.tile.corrupt_swept")
            .unwrap_or(0);
        let (_store, swept) = TileStore::open(&storage, &dir, 0xFEED).unwrap();
        assert_eq!(swept.corrupt, 1, "only the aged-out file is swept");
        assert!(!dir.join("tile-000000.tile.corrupt").exists());
        assert!(dir.join("tile-000001.tile.corrupt").exists());
        assert!(dir.join("tile-000002.tile.corrupt").exists());
        let after = sts_obs::metrics::global()
            .snapshot()
            .counter("runtime.tile.corrupt_swept")
            .unwrap_or(0);
        assert!(after >= before + 1, "sweep counter must advance");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
