//! The supervised worker pool.
//!
//! Replaces the raw `std::thread::scope` row stripes of the original
//! matrix paths. Work arrives as [`PairChunk`]s in a shared queue;
//! workers deal themselves chunks, checking the [`CancelToken`] and
//! [`Budget`] at every chunk boundary. A chunk whose work function
//! panics is retried up to [`RetryPolicy::max_retries`] times with
//! [`DecorrelatedJitter`] backoff before being recorded as
//! [`ChunkStatus::Failed`]; a watchdog thread marks chunks that exceed
//! the per-chunk soft timeout (it cannot preempt them — Rust threads
//! are not killable — but a marked chunk tells the operator *which*
//! pairs wedged). Completed chunk results are streamed back to the
//! caller's thread through [`run_supervised`]'s `on_complete` sink, so
//! the caller can fold cells into its matrix and flush checkpoints
//! without any shared mutable state.

use crate::{Budget, CancelToken, DecorrelatedJitter, PairChunk, StopReason};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};
use sts_obs::{static_counter, static_gauge, static_histogram, trace};

/// Saturating nanosecond count of a [`Duration`].
fn as_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Locks a mutex tolerating poisoning. Every critical section in this
/// module leaves its protected state consistent at each drop point, so
/// a worker thread that panicked while holding a lock (only possible
/// outside `catch_unwind`, e.g. in an allocation failure) must not
/// cascade into a supervisor panic that loses the whole run.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Retry behaviour for panicked work.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Extra attempts after the first failure. `0` disables retries:
    /// the first panic is terminal (the legacy degraded-mode
    /// contract, where a panicked cell is reported as `Panicked`).
    pub max_retries: u32,
    /// First/minimum backoff delay.
    pub backoff_base: Duration,
    /// Backoff cap.
    pub backoff_cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            backoff_base: Duration::from_micros(200),
            backoff_cap: Duration::from_millis(20),
            seed: 0x5753_5254, // "STSR"
        }
    }
}

impl RetryPolicy {
    /// No retries: first panic is terminal.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }
}

/// Pool-level configuration.
#[derive(Debug, Clone, Default)]
pub struct PoolConfig {
    /// Worker threads; `0` selects automatically via
    /// [`thread_count`](crate::thread_count) capped at the chunk count.
    pub threads: usize,
    /// Retry behaviour for panicked chunks.
    pub retry: RetryPolicy,
    /// Per-chunk soft timeout: chunks running (or having run) longer
    /// are marked slow in [`PoolRun::slow_chunks`]. `None` disables
    /// the watchdog.
    pub soft_timeout: Option<Duration>,
    /// Work/wall-clock budget, checked at every chunk boundary.
    pub budget: Budget,
    /// Cooperative cancellation, checked at every chunk boundary.
    pub cancel: CancelToken,
}

/// Terminal status of one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkStatus {
    /// The chunk's work function returned; its cells were delivered to
    /// the sink.
    Completed,
    /// The work function panicked on every attempt.
    Failed {
        /// Total attempts made (1 + retries).
        attempts: u32,
    },
    /// The chunk was never run: the job stopped first.
    Skipped(StopReason),
}

/// What one supervised run did.
#[derive(Debug)]
pub struct PoolRun {
    /// Status of every chunk, indexed like the input slice.
    pub statuses: Vec<ChunkStatus>,
    /// Pairs covered by completed chunks.
    pub pairs_completed: usize,
    /// Chunk retry attempts performed.
    pub retries: u64,
    /// Ids of chunks that exceeded the soft timeout, ascending.
    pub slow_chunks: Vec<usize>,
    /// Why the run stopped early, if it did.
    pub stop: Option<StopReason>,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Total time chunks spent queued before a worker picked them up,
    /// summed over all attempts.
    pub chunk_wait: Duration,
    /// Total time workers spent inside the work function, summed over
    /// all attempts (including ones that panicked).
    pub chunk_run: Duration,
}

/// One queue entry: the chunk, its position in the status vector, how
/// many attempts it has already consumed and when it entered the queue
/// (for wait-time accounting).
struct WorkItem {
    idx: usize,
    chunk: PairChunk,
    attempt: u32,
    enqueued: Instant,
}

/// Shared supervisor state.
struct Shared {
    queue: Mutex<VecDeque<WorkItem>>,
    statuses: Mutex<Vec<Option<ChunkStatus>>>,
    pairs_done: AtomicUsize,
    retries: AtomicU64,
    stop: Mutex<Option<StopReason>>,
    slow: Mutex<Vec<usize>>,
    wait_ns: AtomicU64,
    run_ns: AtomicU64,
    /// The `pool.run` span id — workers parent their `pool.chunk`
    /// spans on it so the trace stitches across threads.
    span: u64,
    done: AtomicBool,
    /// `(chunk idx, start instant)` per worker slot, for the watchdog.
    in_flight: Vec<Mutex<Option<(usize, Instant)>>>,
}

impl Shared {
    fn mark_slow(&self, idx: usize) {
        let mut slow = lock_unpoisoned(&self.slow);
        if !slow.contains(&idx) {
            slow.push(idx);
            static_counter!("runtime.pool.soft_timeouts").incr();
        }
    }

    /// Publishes the current queue length to the depth gauge. Called
    /// with fresh lengths after every push/pop — last write wins, which
    /// is the right semantics for an instantaneous gauge.
    fn report_depth(&self, len: usize) {
        static_gauge!("runtime.pool.queue_depth").set(i64::try_from(len).unwrap_or(i64::MAX));
    }
}

/// Runs `work` over every chunk under supervision.
///
/// `work(chunk)` returns the computed cells as `(linear index, value)`
/// pairs; they are handed — in completion order, on the calling
/// thread — to `on_complete(chunk, cells)`, which is where the caller
/// folds them into its result and (periodically) flushes a
/// checkpoint. Panics inside `work` are caught and retried per
/// [`RetryPolicy`]; `on_complete` must not panic.
///
/// The call returns when every chunk is completed, terminally failed,
/// or skipped because the budget/cancel stopped the run.
pub fn run_supervised<T, F, S>(
    chunks: &[PairChunk],
    cfg: &PoolConfig,
    work: F,
    on_complete: S,
) -> PoolRun
where
    T: Send,
    F: Fn(&PairChunk) -> Vec<(usize, T)> + Sync,
    S: FnMut(&PairChunk, Vec<(usize, T)>),
{
    run_supervised_with(chunks, cfg, |_| (), |_, chunk| work(chunk), on_complete)
}

/// [`run_supervised`] with per-worker state: `init(slot)` runs once on
/// each worker thread when it starts, and the resulting state is handed
/// mutably to every `work` call that worker performs. This is how the
/// scoring paths thread a reusable scratch arena (`sts-core`'s
/// `StpScratch`) through the pool without sharing it across threads.
///
/// A panic inside `work` is caught and the chunk retried per
/// [`RetryPolicy`] — on the same worker, with the same state — so the
/// state must stay usable after an unwound call (buffers that are
/// cleared at the start of each use satisfy this).
pub fn run_supervised_with<W, T, I, F, S>(
    chunks: &[PairChunk],
    cfg: &PoolConfig,
    init: I,
    work: F,
    mut on_complete: S,
) -> PoolRun
where
    T: Send,
    I: Fn(usize) -> W + Sync,
    F: Fn(&mut W, &PairChunk) -> Vec<(usize, T)> + Sync,
    S: FnMut(&PairChunk, Vec<(usize, T)>),
{
    let started = Instant::now();
    let run_span = trace::span("pool.run");
    let n_threads = if cfg.threads > 0 {
        cfg.threads.min(chunks.len().max(1))
    } else {
        crate::thread_count(chunks.len())
    };
    let shared = Shared {
        queue: Mutex::new(
            chunks
                .iter()
                .enumerate()
                .map(|(idx, &chunk)| WorkItem {
                    idx,
                    chunk,
                    attempt: 0,
                    enqueued: started,
                })
                .collect(),
        ),
        statuses: Mutex::new(vec![None; chunks.len()]),
        pairs_done: AtomicUsize::new(0),
        retries: AtomicU64::new(0),
        stop: Mutex::new(None),
        slow: Mutex::new(Vec::new()),
        wait_ns: AtomicU64::new(0),
        run_ns: AtomicU64::new(0),
        span: run_span.id(),
        done: AtomicBool::new(false),
        in_flight: (0..n_threads).map(|_| Mutex::new(None)).collect(),
    };
    shared.report_depth(chunks.len());

    let (tx, rx) = mpsc::channel::<(PairChunk, Vec<(usize, T)>)>();
    std::thread::scope(|scope| {
        for slot in 0..n_threads {
            let tx = tx.clone();
            let shared = &shared;
            let init = &init;
            let work = &work;
            scope.spawn(move || worker_loop(slot, shared, cfg, init, work, tx));
        }
        if let Some(soft) = cfg.soft_timeout {
            let shared = &shared;
            scope.spawn(move || watchdog_loop(shared, soft));
        }
        // The collector runs on the calling thread: fold completed
        // chunks as they stream in. When every worker exits, the last
        // sender drops and the loop ends.
        drop(tx);
        for (chunk, cells) in rx {
            on_complete(&chunk, cells);
        }
        shared.done.store(true, Ordering::Release);
    });
    shared.report_depth(0);

    let stop = *lock_unpoisoned(&shared.stop);
    let statuses: Vec<ChunkStatus> = shared
        .statuses
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .map(|s| s.unwrap_or(ChunkStatus::Skipped(stop.unwrap_or(StopReason::Cancelled))))
        .collect();
    let mut slow_chunks = shared
        .slow
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    slow_chunks.sort_unstable();
    PoolRun {
        statuses,
        pairs_completed: shared.pairs_done.into_inner(),
        retries: shared.retries.into_inner(),
        slow_chunks,
        stop,
        elapsed: started.elapsed(),
        chunk_wait: Duration::from_nanos(shared.wait_ns.into_inner()),
        chunk_run: Duration::from_nanos(shared.run_ns.into_inner()),
    }
}

fn worker_loop<W, T, I, F>(
    slot: usize,
    shared: &Shared,
    cfg: &PoolConfig,
    init: &I,
    work: &F,
    tx: mpsc::Sender<(PairChunk, Vec<(usize, T)>)>,
) where
    T: Send,
    I: Fn(usize) -> W + Sync,
    F: Fn(&mut W, &PairChunk) -> Vec<(usize, T)> + Sync,
{
    let mut backoff = DecorrelatedJitter::new(
        cfg.retry.backoff_base,
        cfg.retry.backoff_cap,
        cfg.retry.seed ^ (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    // Per-worker state (e.g. a scoring scratch arena), created once and
    // reused for every chunk — including retries after a caught panic,
    // so `work` must leave it reusable (clear-on-entry buffers do).
    let mut state = init(slot);
    loop {
        // Cooperative stop check, once per chunk boundary.
        let reason = if cfg.cancel.is_cancelled() {
            Some(StopReason::Cancelled)
        } else {
            cfg.budget.check(shared.pairs_done.load(Ordering::Relaxed))
        };
        let mut queue = lock_unpoisoned(&shared.queue);
        if let Some(reason) = reason {
            // First stop reason wins; drain everything still queued.
            lock_unpoisoned(&shared.stop).get_or_insert(reason);
            let mut statuses = lock_unpoisoned(&shared.statuses);
            while let Some(item) = queue.pop_front() {
                statuses[item.idx] = Some(ChunkStatus::Skipped(reason));
            }
            shared.report_depth(0);
            return;
        }
        let Some(item) = queue.pop_front() else {
            return;
        };
        shared.report_depth(queue.len());
        drop(queue);

        let waited = item.enqueued.elapsed();
        shared.wait_ns.fetch_add(as_ns(waited), Ordering::Relaxed);
        static_histogram!("runtime.pool.chunk_wait_ns").record_duration(waited);

        *lock_unpoisoned(&shared.in_flight[slot]) = Some((item.idx, Instant::now()));
        let chunk_started = Instant::now();
        let result = {
            let _span = trace::span_with_parent("pool.chunk", shared.span);
            catch_unwind(AssertUnwindSafe(|| work(&mut state, &item.chunk)))
        };
        let took = chunk_started.elapsed();
        *lock_unpoisoned(&shared.in_flight[slot]) = None;
        shared.run_ns.fetch_add(as_ns(took), Ordering::Relaxed);
        static_histogram!("runtime.pool.chunk_run_ns").record_duration(took);
        if cfg.soft_timeout.is_some_and(|soft| took > soft) {
            shared.mark_slow(item.idx);
        }

        match result {
            Ok(cells) => {
                shared
                    .pairs_done
                    .fetch_add(item.chunk.len, Ordering::Relaxed);
                lock_unpoisoned(&shared.statuses)[item.idx] = Some(ChunkStatus::Completed);
                // The collector holds the receiver for the whole
                // scope; a send failure means the caller's scope is
                // unwinding already, so dropping the cells is fine.
                let _ = tx.send((item.chunk, cells));
            }
            Err(_) if item.attempt < cfg.retry.max_retries => {
                shared.retries.fetch_add(1, Ordering::Relaxed);
                static_counter!("runtime.pool.retries").incr();
                std::thread::sleep(backoff.next_delay());
                let mut queue = lock_unpoisoned(&shared.queue);
                queue.push_back(WorkItem {
                    attempt: item.attempt + 1,
                    enqueued: Instant::now(),
                    ..item
                });
                shared.report_depth(queue.len());
            }
            Err(_) => {
                lock_unpoisoned(&shared.statuses)[item.idx] = Some(ChunkStatus::Failed {
                    attempts: item.attempt + 1,
                });
            }
        }
    }
}

/// Periodically scans the in-flight table and marks overrunning chunks
/// slow *while they run* — an operator watching the job report sees a
/// wedged chunk before it finishes (if it ever does).
fn watchdog_loop(shared: &Shared, soft: Duration) {
    let tick = (soft / 4).clamp(Duration::from_millis(1), Duration::from_millis(50));
    while !shared.done.load(Ordering::Acquire) {
        std::thread::sleep(tick);
        for slot in &shared.in_flight {
            if let Some((idx, since)) = *lock_unpoisoned(slot) {
                if since.elapsed() > soft {
                    shared.mark_slow(idx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PairSpace;

    fn chunks_of(rows: usize, cols: usize, size: usize) -> Vec<PairChunk> {
        PairSpace::new(rows, cols).chunks(size).collect()
    }

    /// Runs `f` with panic output silenced (retry tests panic on
    /// purpose).
    fn quietly<T>(f: impl FnOnce() -> T) -> T {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn clean_run_completes_every_chunk_and_delivers_every_cell() {
        let space = PairSpace::new(6, 7);
        let chunks = chunks_of(6, 7, 5);
        let mut cells = vec![u64::MAX; space.len()];
        let run = run_supervised(
            &chunks,
            &PoolConfig::default(),
            |c| c.range().map(|lin| (lin, lin as u64 * 3)).collect(),
            |_c, computed| {
                for (lin, v) in computed {
                    cells[lin] = v;
                }
            },
        );
        assert!(run.statuses.iter().all(|s| *s == ChunkStatus::Completed));
        assert_eq!(run.pairs_completed, space.len());
        assert_eq!(run.stop, None);
        assert_eq!(run.retries, 0);
        for (lin, v) in cells.iter().enumerate() {
            assert_eq!(*v, lin as u64 * 3);
        }
    }

    #[test]
    fn panicking_chunk_is_retried_then_failed() {
        quietly(|| {
            let chunks = chunks_of(4, 1, 1); // 4 chunks of 1 pair
            let cfg = PoolConfig {
                retry: RetryPolicy {
                    max_retries: 2,
                    backoff_base: Duration::from_micros(10),
                    backoff_cap: Duration::from_micros(100),
                    seed: 1,
                },
                ..PoolConfig::default()
            };
            let mut delivered = Vec::new();
            let run = run_supervised(
                &chunks,
                &cfg,
                |c| {
                    if c.start == 2 {
                        panic!("poisoned chunk");
                    }
                    vec![(c.start, c.start)]
                },
                |_c, cells| delivered.extend(cells),
            );
            assert_eq!(run.statuses[2], ChunkStatus::Failed { attempts: 3 });
            assert_eq!(run.retries, 2);
            for idx in [0, 1, 3] {
                assert_eq!(run.statuses[idx], ChunkStatus::Completed, "chunk {idx}");
            }
            delivered.sort_unstable();
            assert_eq!(delivered, vec![(0, 0), (1, 1), (3, 3)]);
        });
    }

    #[test]
    fn transient_panic_recovers_on_retry() {
        quietly(|| {
            let chunks = chunks_of(1, 1, 1);
            let tries = AtomicUsize::new(0);
            let cfg = PoolConfig {
                retry: RetryPolicy {
                    max_retries: 3,
                    backoff_base: Duration::from_micros(10),
                    backoff_cap: Duration::from_micros(50),
                    seed: 2,
                },
                ..PoolConfig::default()
            };
            let run = run_supervised(
                &chunks,
                &cfg,
                |c| {
                    if tries.fetch_add(1, Ordering::Relaxed) < 2 {
                        panic!("transient");
                    }
                    vec![(c.start, 7u8)]
                },
                |_, _| {},
            );
            assert_eq!(run.statuses[0], ChunkStatus::Completed);
            assert_eq!(run.retries, 2);
            assert_eq!(run.pairs_completed, 1);
        });
    }

    #[test]
    fn zero_pair_budget_skips_everything() {
        let chunks = chunks_of(4, 4, 4);
        let cfg = PoolConfig {
            budget: Budget::with_max_pairs(0),
            ..PoolConfig::default()
        };
        let run = run_supervised(
            &chunks,
            &cfg,
            |c| c.range().map(|lin| (lin, ())).collect(),
            |_, _| panic!("no chunk may complete"),
        );
        assert_eq!(run.stop, Some(StopReason::PairBudgetExhausted));
        assert_eq!(run.pairs_completed, 0);
        assert!(run
            .statuses
            .iter()
            .all(|s| *s == ChunkStatus::Skipped(StopReason::PairBudgetExhausted)));
    }

    #[test]
    fn pair_budget_stops_mid_run_with_completed_chunks_intact() {
        let chunks = chunks_of(10, 10, 5); // 20 chunks of 5
        let cfg = PoolConfig {
            threads: 1, // deterministic deal order
            budget: Budget::with_max_pairs(12),
            ..PoolConfig::default()
        };
        let mut got = 0usize;
        let run = run_supervised(
            &chunks,
            &cfg,
            |c| c.range().map(|lin| (lin, ())).collect(),
            |c, _| got += c.len,
        );
        // 12 pairs = 2.4 chunks -> the 3rd chunk completes (15 done),
        // then the boundary check trips.
        assert_eq!(run.stop, Some(StopReason::PairBudgetExhausted));
        assert_eq!(run.pairs_completed, 15);
        assert_eq!(got, 15);
        let completed = run
            .statuses
            .iter()
            .filter(|s| **s == ChunkStatus::Completed)
            .count();
        assert_eq!(completed, 3);
    }

    #[test]
    fn cancellation_skips_the_rest() {
        let token = CancelToken::new();
        let chunks = chunks_of(8, 8, 8);
        let cfg = PoolConfig {
            threads: 1,
            cancel: token.clone(),
            ..PoolConfig::default()
        };
        let mut completed = 0usize;
        let run = run_supervised(
            &chunks,
            &cfg,
            |c| {
                if c.id == 1 {
                    token.cancel();
                }
                c.range().map(|lin| (lin, ())).collect()
            },
            |_, _| completed += 1,
        );
        assert_eq!(run.stop, Some(StopReason::Cancelled));
        assert!(completed >= 2, "chunks before the cancel completed");
        assert!(
            run.statuses
                .iter()
                .any(|s| *s == ChunkStatus::Skipped(StopReason::Cancelled)),
            "chunks after the cancel were skipped"
        );
    }

    #[test]
    fn expired_deadline_skips_everything() {
        let chunks = chunks_of(4, 4, 4);
        let cfg = PoolConfig {
            budget: Budget::with_deadline(Duration::ZERO),
            ..PoolConfig::default()
        };
        let run = run_supervised(
            &chunks,
            &cfg,
            |c| c.range().map(|lin| (lin, ())).collect(),
            |_, _| {},
        );
        assert_eq!(run.stop, Some(StopReason::DeadlineExceeded));
        assert_eq!(run.pairs_completed, 0);
    }

    #[test]
    fn slow_chunk_is_marked_by_the_watchdog() {
        let chunks = chunks_of(3, 1, 1);
        let cfg = PoolConfig {
            soft_timeout: Some(Duration::from_millis(5)),
            ..PoolConfig::default()
        };
        let run = run_supervised(
            &chunks,
            &cfg,
            |c| {
                if c.id == 1 {
                    std::thread::sleep(Duration::from_millis(30));
                }
                vec![(c.start, ())]
            },
            |_, _| {},
        );
        assert!(run.slow_chunks.contains(&1), "slow: {:?}", run.slow_chunks);
        assert!(run.statuses.iter().all(|s| *s == ChunkStatus::Completed));
    }

    #[test]
    fn empty_chunk_list_returns_immediately() {
        let run = run_supervised(
            &[],
            &PoolConfig::default(),
            |_c| Vec::<(usize, ())>::new(),
            |_, _| {},
        );
        assert!(run.statuses.is_empty());
        assert_eq!(run.stop, None);
        assert_eq!(run.pairs_completed, 0);
    }
}
