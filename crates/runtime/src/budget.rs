//! Wall-clock and work budgets for long-running jobs.

use std::fmt;
use std::time::{Duration, Instant};

/// A wall-clock deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Self {
        Deadline {
            at: Instant::now() + d,
        }
    }

    /// A deadline at an absolute instant.
    pub fn at(at: Instant) -> Self {
        Deadline { at }
    }

    /// Has the deadline passed?
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// Why a job stopped before completing every pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The [`CancelToken`](crate::CancelToken) was cancelled.
    Cancelled,
    /// The wall-clock [`Deadline`] expired.
    DeadlineExceeded,
    /// The max-pairs budget was spent.
    PairBudgetExhausted,
    /// The subprocess supervisor spent its worker-restart budget:
    /// workers kept dying faster than the job made progress, so the
    /// supervisor stopped dealing work instead of crash-looping.
    WorkerRestartsExhausted,
    /// A worker refused the job handshake (protocol version or job
    /// fingerprint mismatch). Unlike a crash, rejection is permanent
    /// for the pair of binaries involved — respawning the same worker
    /// would reject again — so the run stops immediately instead of
    /// burning the restart budget.
    WorkerRejected,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Cancelled => write!(f, "cancelled"),
            StopReason::DeadlineExceeded => write!(f, "deadline exceeded"),
            StopReason::PairBudgetExhausted => write!(f, "pair budget exhausted"),
            StopReason::WorkerRestartsExhausted => write!(f, "worker restarts exhausted"),
            StopReason::WorkerRejected => write!(f, "worker rejected the job handshake"),
        }
    }
}

/// How much work a job is allowed: a wall-clock deadline, a cap on the
/// number of pairs processed, both, or neither.
///
/// Budgets are checked cooperatively at pair-chunk boundaries; a chunk
/// already dealt runs to completion, so a stopped job always holds a
/// *consistent* partial result (whole chunks, never a torn cell).
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget {
    /// Stop dealing work once this instant passes.
    pub deadline: Option<Deadline>,
    /// Stop dealing work once this many pairs have been processed this
    /// run (checkpoint-restored cells do not count — they cost nothing).
    pub max_pairs: Option<usize>,
}

impl Budget {
    /// No limits: the job runs until every pair is resolved.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A wall-clock budget of `d` from now.
    pub fn with_deadline(d: Duration) -> Self {
        Budget {
            deadline: Some(Deadline::after(d)),
            max_pairs: None,
        }
    }

    /// A work budget of at most `n` pairs.
    pub fn with_max_pairs(n: usize) -> Self {
        Budget {
            deadline: None,
            max_pairs: Some(n),
        }
    }

    /// Builder: add a wall-clock deadline `d` from now.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(Deadline::after(d));
        self
    }

    /// Builder: add a max-pairs cap.
    pub fn max_pairs(mut self, n: usize) -> Self {
        self.max_pairs = Some(n);
        self
    }

    /// Should a job that has processed `pairs_done` pairs stop *now*?
    /// Deadline expiry wins over the pair budget when both have
    /// tripped (the wall clock is the harder constraint).
    pub fn check(&self, pairs_done: usize) -> Option<StopReason> {
        if let Some(d) = &self.deadline {
            if d.expired() {
                return Some(StopReason::DeadlineExceeded);
            }
        }
        if let Some(max) = self.max_pairs {
            if pairs_done >= max {
                return Some(StopReason::PairBudgetExhausted);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_stops() {
        let b = Budget::unlimited();
        assert_eq!(b.check(0), None);
        assert_eq!(b.check(usize::MAX), None);
    }

    #[test]
    fn zero_pair_budget_stops_immediately() {
        let b = Budget::with_max_pairs(0);
        assert_eq!(b.check(0), Some(StopReason::PairBudgetExhausted));
    }

    #[test]
    fn pair_budget_stops_at_the_cap() {
        let b = Budget::with_max_pairs(100);
        assert_eq!(b.check(99), None);
        assert_eq!(b.check(100), Some(StopReason::PairBudgetExhausted));
    }

    #[test]
    fn expired_deadline_stops_and_wins_over_pair_budget() {
        let b = Budget::with_deadline(Duration::ZERO).max_pairs(0);
        assert_eq!(b.check(0), Some(StopReason::DeadlineExceeded));
    }

    #[test]
    fn generous_deadline_does_not_stop() {
        let b = Budget::with_deadline(Duration::from_secs(3600));
        assert_eq!(b.check(1_000_000), None);
        assert!(b.deadline.unwrap().remaining() > Duration::from_secs(3000));
        assert!(!b.deadline.unwrap().expired());
    }
}
