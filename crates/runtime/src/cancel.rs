//! Cooperative cancellation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cooperative cancellation flag shared between a job and its owner.
///
/// Cloning is cheap (an `Arc<AtomicBool>`); every clone observes the
/// same flag. Workers check the token at pair-chunk boundaries, so
/// cancellation latency is bounded by the cost of one chunk — a wedged
/// *pair* is the watchdog's problem, not the token's.
///
/// Cancellation is sticky: once cancelled, a token stays cancelled.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread (e.g. a
    /// Ctrl-C handler or an RPC deadline watcher).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_is_sticky_and_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(!clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        token.cancel(); // idempotent
        assert!(clone.is_cancelled());
    }

    #[test]
    fn cancel_is_visible_across_threads() {
        let token = CancelToken::new();
        let seen = std::thread::scope(|s| {
            let t = token.clone();
            let h = s.spawn(move || {
                while !t.is_cancelled() {
                    std::thread::yield_now();
                }
                true
            });
            token.cancel();
            h.join().unwrap()
        });
        assert!(seen);
    }
}
