//! The shared pair-chunking iterator.
//!
//! Every matrix path (strict, degraded, supervised) iterates the same
//! `rows × cols` pair space. Before this crate existed each path
//! row-striped it independently — duplicated logic that had already
//! started to drift. [`PairSpace`] linearizes the space row-major and
//! [`PairSpace::chunks`] deals it out in fixed-size [`PairChunk`]s,
//! the unit of scheduling, cancellation checks, retry and
//! checkpointing throughout the runtime.

/// A `rows × cols` pair space, linearized row-major: linear index
/// `lin` names the cell `(lin / cols, lin % cols)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairSpace {
    rows: usize,
    cols: usize,
}

impl PairSpace {
    /// The space of all `(query row, candidate column)` pairs.
    ///
    /// # Panics
    /// When `rows * cols` overflows `usize` — a space whose linear
    /// indices cannot be represented would silently wrap every
    /// downstream chunk computation, so it is rejected at the door.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows.checked_mul(cols).is_some(),
            "pair space {rows}x{cols} overflows usize"
        );
        PairSpace { rows, cols }
    }

    /// Number of query rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of candidate columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of pairs.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Is the space empty (no rows or no columns)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maps a linear index back to its `(row, col)` cell.
    ///
    /// # Panics
    /// When `lin >= self.len()` (out of the space).
    pub fn pair(&self, lin: usize) -> (usize, usize) {
        assert!(lin < self.len(), "pair index {lin} out of {}", self.len());
        (lin / self.cols, lin % self.cols)
    }

    /// Deals the space into chunks of at most `chunk_pairs` pairs, in
    /// linear order. `chunk_pairs` is clamped to ≥ 1. The chunks
    /// partition the space exactly: every pair appears in exactly one
    /// chunk, and chunk `k` covers linear indices
    /// `[k·chunk_pairs, …)` — aligned with `slice::chunks_mut` over a
    /// flat row-major buffer, which is how the strict matrix path
    /// hands each chunk a disjoint output slice.
    pub fn chunks(&self, chunk_pairs: usize) -> impl Iterator<Item = PairChunk> + '_ {
        let size = chunk_pairs.max(1);
        let total = self.len();
        (0..total.div_ceil(size)).map(move |id| {
            let start = id * size;
            PairChunk {
                id,
                start,
                len: size.min(total - start),
            }
        })
    }
}

/// A contiguous run of linear pair indices — the unit of work dealt to
/// the supervised pool's shared queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairChunk {
    /// Sequential chunk id (`0..n_chunks`), also the chunk's index in
    /// the pool's status vector.
    pub id: usize,
    /// First linear pair index covered.
    pub start: usize,
    /// Number of pairs covered.
    pub len: usize,
}

impl PairChunk {
    /// The linear pair indices this chunk covers.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_partition_the_space_exactly() {
        for (rows, cols, size) in [(3, 5, 4), (1, 1, 1), (4, 4, 16), (4, 4, 64), (7, 3, 1)] {
            let space = PairSpace::new(rows, cols);
            let mut seen = vec![0usize; space.len()];
            for (k, chunk) in space.chunks(size).enumerate() {
                assert_eq!(chunk.id, k);
                assert!(chunk.len >= 1 && chunk.len <= size);
                for lin in chunk.range() {
                    seen[lin] += 1;
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "{rows}x{cols}/{size}: {seen:?}"
            );
        }
    }

    #[test]
    fn empty_space_yields_no_chunks() {
        assert_eq!(PairSpace::new(0, 7).chunks(4).count(), 0);
        assert_eq!(PairSpace::new(7, 0).chunks(4).count(), 0);
        assert!(PairSpace::new(0, 7).is_empty());
    }

    #[test]
    fn pair_mapping_is_row_major() {
        let space = PairSpace::new(3, 4);
        assert_eq!(space.pair(0), (0, 0));
        assert_eq!(space.pair(3), (0, 3));
        assert_eq!(space.pair(4), (1, 0));
        assert_eq!(space.pair(11), (2, 3));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn pair_mapping_rejects_out_of_space() {
        PairSpace::new(2, 2).pair(4);
    }

    #[test]
    fn zero_chunk_size_is_clamped() {
        let space = PairSpace::new(2, 2);
        assert_eq!(space.chunks(0).count(), 4);
    }

    #[test]
    fn single_row_and_single_column_spaces_chunk_correctly() {
        // Degenerate-but-legal geometries: a 1×n top-k row job and an
        // n×1 column job must chunk exactly like any other space.
        for (rows, cols) in [(1, 9), (9, 1), (1, 1)] {
            let space = PairSpace::new(rows, cols);
            assert_eq!(space.len(), rows * cols);
            let chunks: Vec<PairChunk> = space.chunks(4).collect();
            assert_eq!(chunks.len(), space.len().div_ceil(4));
            let covered: usize = chunks.iter().map(|c| c.len).sum();
            assert_eq!(covered, space.len());
            // Row-major mapping holds at the edges.
            assert_eq!(space.pair(0), (0, 0));
            assert_eq!(space.pair(space.len() - 1), (rows - 1, cols - 1));
        }
    }

    #[test]
    fn empty_space_has_full_api_coverage() {
        for (rows, cols) in [(0, 0), (0, 5), (5, 0)] {
            let space = PairSpace::new(rows, cols);
            assert!(space.is_empty());
            assert_eq!(space.len(), 0);
            assert_eq!(space.chunks(1).count(), 0);
            assert_eq!(space.chunks(usize::MAX).count(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "overflows usize")]
    fn huge_dims_overflow_is_rejected_not_wrapped() {
        // usize::MAX x 2 wraps to a *small* product; before the guard
        // this produced a chunk count of ~0 and silently dropped the
        // entire pair space.
        PairSpace::new(usize::MAX, 2);
    }

    #[test]
    fn max_len_space_still_counts_chunks_without_overflow() {
        // A space of exactly usize::MAX pairs is representable; its
        // chunk *count* must not overflow either.
        let space = PairSpace::new(usize::MAX, 1);
        assert_eq!(space.len(), usize::MAX);
        let mut chunks = space.chunks(usize::MAX);
        let first = chunks.next().unwrap();
        assert_eq!(first.len, usize::MAX);
        assert!(chunks.next().is_none());
    }

    #[test]
    fn chunk_boundaries_align_with_slice_chunks_mut() {
        let space = PairSpace::new(5, 7);
        let mut flat = vec![0u8; space.len()];
        let size = 4;
        let chunks: Vec<PairChunk> = space.chunks(size).collect();
        let slices: Vec<&mut [u8]> = flat.chunks_mut(size).collect();
        assert_eq!(chunks.len(), slices.len());
        for (c, s) in chunks.iter().zip(&slices) {
            assert_eq!(c.len, s.len());
        }
    }
}
