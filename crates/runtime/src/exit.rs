//! How a worker subprocess died.
//!
//! Crash attribution needs a compact, serializable description of the
//! death so a poisoned pair can be checkpointed, reported and replayed.
//! [`WorkerExit`] is that description: it round-trips through a single
//! whitespace-free token (`code:1`, `signal:6`, `hard-timeout`,
//! `protocol`), which is what the checkpoint `x` record and the job
//! report print. It lives in `sts-runtime` — below both the checkpoint
//! codec and the `sts-isolate` supervisor — so the two agree on one
//! type without a dependency cycle.

use std::fmt;
use std::str::FromStr;

/// Why a worker subprocess was lost while holding a chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WorkerExit {
    /// The process exited with a status code (`abort()`-free death:
    /// e.g. an explicit `exit(1)` or a Rust panic=abort runtime error).
    Code(i32),
    /// The process was terminated by a signal (Unix): SIGABRT from
    /// `std::process::abort`, SIGSEGV from a stack overflow, SIGKILL
    /// from the OOM killer.
    Signal(i32),
    /// The supervisor killed the process because a chunk exceeded the
    /// hard timeout (a wedged computation that never returned).
    HardTimeout,
    /// The process broke the stdin/stdout protocol (garbage output,
    /// torn frame, unexpected EOF) and was discarded.
    Protocol,
    /// The worker refused the handshake — protocol version or job
    /// fingerprint mismatch. A rejection is permanent for the pair of
    /// binaries involved: restarting the same worker cannot fix it.
    Rejected,
}

impl fmt::Display for WorkerExit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerExit::Code(c) => write!(f, "code:{c}"),
            WorkerExit::Signal(s) => write!(f, "signal:{s}"),
            WorkerExit::HardTimeout => write!(f, "hard-timeout"),
            WorkerExit::Protocol => write!(f, "protocol"),
            WorkerExit::Rejected => write!(f, "rejected"),
        }
    }
}

/// Error parsing a [`WorkerExit`] token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWorkerExitError(String);

impl fmt::Display for ParseWorkerExitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad worker exit token `{}`", self.0)
    }
}

impl std::error::Error for ParseWorkerExitError {}

impl FromStr for WorkerExit {
    type Err = ParseWorkerExitError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || ParseWorkerExitError(s.to_string());
        if let Some(c) = s.strip_prefix("code:") {
            return c.parse().map(WorkerExit::Code).map_err(|_| bad());
        }
        if let Some(sig) = s.strip_prefix("signal:") {
            return sig.parse().map(WorkerExit::Signal).map_err(|_| bad());
        }
        match s {
            "hard-timeout" => Ok(WorkerExit::HardTimeout),
            "protocol" => Ok(WorkerExit::Protocol),
            "rejected" => Ok(WorkerExit::Rejected),
            _ => Err(bad()),
        }
    }
}

impl WorkerExit {
    /// Classifies a finished [`std::process::ExitStatus`]: the exit
    /// code when there is one, the killing signal on Unix otherwise.
    pub fn from_status(status: std::process::ExitStatus) -> Self {
        if let Some(code) = status.code() {
            return WorkerExit::Code(code);
        }
        #[cfg(unix)]
        {
            use std::os::unix::process::ExitStatusExt;
            if let Some(sig) = status.signal() {
                return WorkerExit::Signal(sig);
            }
        }
        // No code and no signal: an exotic platform state; report the
        // most generic code rather than invent a signal number.
        WorkerExit::Code(-1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip() {
        for exit in [
            WorkerExit::Code(0),
            WorkerExit::Code(101),
            WorkerExit::Code(-7),
            WorkerExit::Signal(6),
            WorkerExit::Signal(9),
            WorkerExit::HardTimeout,
            WorkerExit::Protocol,
            WorkerExit::Rejected,
        ] {
            let token = exit.to_string();
            assert!(
                !token.contains(char::is_whitespace),
                "token `{token}` must be a single field"
            );
            assert_eq!(token.parse::<WorkerExit>().unwrap(), exit);
        }
    }

    #[test]
    fn bad_tokens_are_errors() {
        for bad in [
            "", "code:", "code:x", "signal:", "sig:9", "timeout", "CODE:1",
        ] {
            assert!(bad.parse::<WorkerExit>().is_err(), "`{bad}` must not parse");
        }
    }
}
