//! Frequency-based discrete transition estimation.
//!
//! Prior works the paper ablates against ([24], [25], [34] — the `STS-F`
//! variant, and APM's anchor calibration) estimate the transition
//! probability between grid cells as the *frequency* of observed
//! transitions in historical data, shared by all objects. This module
//! implements those counts with Laplace (add-α) smoothing so unseen
//! transitions keep nonzero probability, avoiding the data-sparsity
//! degeneracies the paper mentions (§II).

/// Transition counts over a discrete state space `0 .. n`.
#[derive(Debug, Clone)]
pub struct TransitionCounts {
    n: usize,
    /// Sparse rows: `counts[from]` maps `to -> count`. Kept sorted by key.
    rows: Vec<Vec<(u32, u64)>>,
    row_totals: Vec<u64>,
    alpha: f64,
}

impl TransitionCounts {
    /// Creates an empty table over `n` states with Laplace smoothing
    /// parameter `alpha` (0 disables smoothing; then unseen rows are
    /// uniform by convention).
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "state space must be non-empty");
        assert!(alpha >= 0.0 && alpha.is_finite(), "alpha must be >= 0");
        TransitionCounts {
            n,
            rows: vec![Vec::new(); n],
            row_totals: vec![0; n],
            alpha,
        }
    }

    /// Number of states.
    #[inline]
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// Records one observed transition `from -> to`.
    pub fn record(&mut self, from: usize, to: usize) {
        assert!(from < self.n && to < self.n, "state out of range");
        let row = &mut self.rows[from];
        match row.binary_search_by_key(&(to as u32), |&(k, _)| k) {
            Ok(i) => row[i].1 += 1,
            Err(i) => row.insert(i, (to as u32, 1)),
        }
        self.row_totals[from] += 1;
    }

    /// Records every consecutive pair of a state sequence.
    pub fn record_sequence(&mut self, states: &[usize]) {
        for w in states.windows(2) {
            self.record(w[0], w[1]);
        }
    }

    /// Raw count of `from -> to`.
    pub fn count(&self, from: usize, to: usize) -> u64 {
        assert!(from < self.n && to < self.n, "state out of range");
        self.rows[from]
            .binary_search_by_key(&(to as u32), |&(k, _)| k)
            .map(|i| self.rows[from][i].1)
            .unwrap_or(0)
    }

    /// Total transitions recorded out of `from`.
    pub fn row_total(&self, from: usize) -> u64 {
        self.row_totals[from]
    }

    /// Smoothed transition probability
    /// `(count + α) / (row_total + α·n)`; rows with no data and α = 0
    /// fall back to the uniform distribution.
    pub fn probability(&self, from: usize, to: usize) -> f64 {
        let total = self.row_totals[from] as f64;
        let c = self.count(from, to) as f64;
        let denom = total + self.alpha * self.n as f64;
        if denom == 0.0 {
            return 1.0 / self.n as f64;
        }
        (c + self.alpha) / denom
    }

    /// The full outgoing distribution of `from` as a dense vector.
    pub fn distribution(&self, from: usize) -> Vec<f64> {
        (0..self.n).map(|to| self.probability(from, to)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting() {
        let mut t = TransitionCounts::new(4, 0.0);
        t.record(0, 1);
        t.record(0, 1);
        t.record(0, 2);
        assert_eq!(t.count(0, 1), 2);
        assert_eq!(t.count(0, 2), 1);
        assert_eq!(t.count(0, 3), 0);
        assert_eq!(t.row_total(0), 3);
        assert_eq!(t.row_total(1), 0);
    }

    #[test]
    fn record_sequence_counts_pairs() {
        let mut t = TransitionCounts::new(3, 0.0);
        t.record_sequence(&[0, 1, 1, 2, 0]);
        assert_eq!(t.count(0, 1), 1);
        assert_eq!(t.count(1, 1), 1);
        assert_eq!(t.count(1, 2), 1);
        assert_eq!(t.count(2, 0), 1);
        assert_eq!(t.row_total(1), 2);
    }

    #[test]
    fn probabilities_without_smoothing() {
        let mut t = TransitionCounts::new(3, 0.0);
        t.record(0, 1);
        t.record(0, 1);
        t.record(0, 2);
        assert!((t.probability(0, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((t.probability(0, 2) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.probability(0, 0), 0.0);
        // Empty row -> uniform fallback.
        assert!((t.probability(1, 0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn probabilities_with_laplace() {
        let mut t = TransitionCounts::new(2, 1.0);
        t.record(0, 0);
        // (1 + 1) / (1 + 2) and (0 + 1) / (1 + 2)
        assert!((t.probability(0, 0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((t.probability(0, 1) - 1.0 / 3.0).abs() < 1e-12);
        // Unseen row: uniform.
        assert!((t.probability(1, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rows_sum_to_one() {
        let mut t = TransitionCounts::new(5, 0.5);
        t.record_sequence(&[0, 1, 2, 3, 4, 0, 2, 2, 1]);
        for from in 0..5 {
            let sum: f64 = t.distribution(from).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {from} sums to {sum}");
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_state_panics() {
        let mut t = TransitionCounts::new(2, 0.0);
        t.record(0, 5);
    }
}
