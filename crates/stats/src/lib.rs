#![warn(missing_docs)]
//! # sts-stats — statistics substrate
//!
//! Probability and estimation building blocks used by the STS measure and
//! by the rebuilt baselines:
//!
//! * [`gaussian`] — normal pdf/cdf (with an `erf` implementation);
//! * [`kernel`] / [`kde`] — kernel density estimation with Silverman's
//!   rule-of-thumb bandwidth, the engine behind the paper's personalized
//!   speed model (§IV-B, Eq. 6);
//! * [`summary`] — descriptive statistics;
//! * [`kalman`] — a 2-D constant-velocity Kalman filter (the `KF`
//!   baseline of §VI-A);
//! * [`empirical`] — frequency-based discrete transition estimation with
//!   Laplace smoothing (the `STS-F` ablation variant and APM's calibration
//!   model [24], [25], [34]);
//! * [`brownian`] — the Brownian-bridge location model, which the paper
//!   notes is the special case of STS's transition estimator under a
//!   Gaussian speed distribution (§II).

pub mod brownian;
pub mod empirical;
pub mod gaussian;
pub mod kalman;
pub mod kde;
pub mod kernel;
pub mod summary;

pub use brownian::BrownianBridge;
pub use empirical::TransitionCounts;
pub use gaussian::Gaussian;
pub use kalman::{KalmanConfig, KalmanFilter2D, KalmanState};
pub use kde::{Kde, KdeError};
pub use kernel::Kernel;
