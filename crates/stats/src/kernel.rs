//! Smoothing kernels for kernel density estimation.
//!
//! The paper uses "the most popular normal kernel" (§IV-B); we additionally
//! expose the other classic kernels so the kernel choice can be ablated
//! (see `DESIGN.md` §5). Every kernel is a symmetric, non-negative function
//! integrating to one.

use crate::gaussian::standard_normal_pdf;

/// A smoothing kernel `K(u)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Kernel {
    /// The Gaussian kernel `φ(u)` — the paper's choice.
    #[default]
    Gaussian,
    /// Epanechnikov kernel `¾(1 − u²)` on `[-1, 1]` (MSE-optimal).
    Epanechnikov,
    /// Uniform (box) kernel `½` on `[-1, 1]`.
    Uniform,
    /// Triangular kernel `1 − |u|` on `[-1, 1]`.
    Triangular,
}

impl Kernel {
    /// Evaluates the kernel at `u`.
    pub fn evaluate(&self, u: f64) -> f64 {
        match self {
            Kernel::Gaussian => standard_normal_pdf(u),
            Kernel::Epanechnikov => {
                if u.abs() <= 1.0 {
                    0.75 * (1.0 - u * u)
                } else {
                    0.0
                }
            }
            Kernel::Uniform => {
                if u.abs() <= 1.0 {
                    0.5
                } else {
                    0.0
                }
            }
            Kernel::Triangular => {
                let a = u.abs();
                if a <= 1.0 {
                    1.0 - a
                } else {
                    0.0
                }
            }
        }
    }

    /// Radius beyond which the kernel is treated as zero, in units of
    /// `u`. Used to truncate KDE sums and displacement bounds. The
    /// Gaussian is unbounded; at 6σ the density is below 7·10⁻⁹ of the
    /// peak — far under anything the similarity measure can resolve —
    /// so 6 bounds the practical support.
    pub fn support_radius(&self) -> f64 {
        match self {
            Kernel::Gaussian => 6.0,
            _ => 1.0,
        }
    }

    /// Human-readable name (used in experiment reports).
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Gaussian => "gaussian",
            Kernel::Epanechnikov => "epanechnikov",
            Kernel::Uniform => "uniform",
            Kernel::Triangular => "triangular",
        }
    }
}

/// All kernels, for sweeps/ablations.
pub const ALL_KERNELS: [Kernel; 4] = [
    Kernel::Gaussian,
    Kernel::Epanechnikov,
    Kernel::Uniform,
    Kernel::Triangular,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_are_symmetric_nonnegative() {
        for k in ALL_KERNELS {
            for i in 0..100 {
                let u = i as f64 / 20.0;
                let a = k.evaluate(u);
                let b = k.evaluate(-u);
                assert!(a >= 0.0, "{k:?} at {u}");
                assert!((a - b).abs() < 1e-12, "{k:?} asymmetric at {u}");
            }
        }
    }

    #[test]
    fn kernels_integrate_to_one() {
        for k in ALL_KERNELS {
            let du = 1e-3;
            let mut sum = 0.0;
            let mut u = -12.0;
            while u < 12.0 {
                sum += k.evaluate(u) * du;
                u += du;
            }
            assert!((sum - 1.0).abs() < 2e-3, "{k:?} integral {sum}");
        }
    }

    #[test]
    fn compact_kernels_vanish_outside_support() {
        for k in [Kernel::Epanechnikov, Kernel::Uniform, Kernel::Triangular] {
            assert_eq!(k.evaluate(1.0001), 0.0);
            assert_eq!(k.evaluate(-5.0), 0.0);
            assert_eq!(k.support_radius(), 1.0);
        }
        assert!(Kernel::Gaussian.evaluate(3.0) > 0.0);
        assert!(Kernel::Gaussian.evaluate(Kernel::Gaussian.support_radius()) < 1e-8);
    }

    #[test]
    fn known_values_at_zero() {
        assert!((Kernel::Gaussian.evaluate(0.0) - 0.3989422804).abs() < 1e-9);
        assert_eq!(Kernel::Epanechnikov.evaluate(0.0), 0.75);
        assert_eq!(Kernel::Uniform.evaluate(0.0), 0.5);
        assert_eq!(Kernel::Triangular.evaluate(0.0), 1.0);
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> = ALL_KERNELS.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), ALL_KERNELS.len());
    }

    #[test]
    fn default_is_gaussian() {
        assert_eq!(Kernel::default(), Kernel::Gaussian);
    }
}
