//! 2-D constant-velocity Kalman filter (the `KF` baseline, §VI-A).
//!
//! State `x = [px, py, vx, vy]ᵀ` with transition
//!
//! ```text
//! F(Δt) = | I₂  Δt·I₂ |      z = H x + v,  H = [I₂ 0]
//!         | 0   I₂    |
//! ```
//!
//! process noise from a white-acceleration model with spectral density
//! `q`, and isotropic measurement noise `r²·I₂`. A Rauch–Tung–Striebel
//! smoother refines the forward pass; positions at arbitrary times are
//! produced by constant-velocity prediction from the bracketing state
//! (matching the paper's use of KF to "estimate the object location at a
//! given time").

use sts_geo::Point;

type Mat4 = [[f64; 4]; 4];
type Vec4 = [f64; 4];

fn mat_mul(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut c = [[0.0; 4]; 4];
    for i in 0..4 {
        for k in 0..4 {
            let aik = a[i][k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..4 {
                c[i][j] += aik * b[k][j];
            }
        }
    }
    c
}

fn mat_vec(a: &Mat4, v: &Vec4) -> Vec4 {
    let mut out = [0.0; 4];
    for i in 0..4 {
        for j in 0..4 {
            out[i] += a[i][j] * v[j];
        }
    }
    out
}

fn mat_add(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut c = [[0.0; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            c[i][j] = a[i][j] + b[i][j];
        }
    }
    c
}

fn mat_sub(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut c = [[0.0; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            c[i][j] = a[i][j] - b[i][j];
        }
    }
    c
}

fn mat_transpose(a: &Mat4) -> Mat4 {
    let mut c = [[0.0; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            c[i][j] = a[j][i];
        }
    }
    c
}

fn identity() -> Mat4 {
    let mut m = [[0.0; 4]; 4];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    m
}

/// Inverts a 4×4 matrix by Gauss–Jordan elimination with partial
/// pivoting. Returns `None` for (numerically) singular matrices.
fn mat_inverse(a: &Mat4) -> Option<Mat4> {
    let mut aug = [[0.0; 8]; 4];
    for i in 0..4 {
        aug[i][..4].copy_from_slice(&a[i]);
        aug[i][4 + i] = 1.0;
    }
    for col in 0..4 {
        let pivot_row = (col..4)
            .max_by(|&r1, &r2| {
                aug[r1][col]
                    .abs()
                    .partial_cmp(&aug[r2][col].abs())
                    .expect("finite matrix entries")
            })
            .expect("non-empty range");
        if aug[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        aug.swap(col, pivot_row);
        let pivot = aug[col][col];
        for v in aug[col].iter_mut() {
            *v /= pivot;
        }
        for row in 0..4 {
            if row == col {
                continue;
            }
            let factor = aug[row][col];
            if factor == 0.0 {
                continue;
            }
            let pivot_row_vals = aug[col];
            for (v, pv) in aug[row].iter_mut().zip(pivot_row_vals.iter()) {
                *v -= factor * pv;
            }
        }
    }
    let mut inv = [[0.0; 4]; 4];
    for i in 0..4 {
        inv[i].copy_from_slice(&aug[i][4..]);
    }
    Some(inv)
}

/// Noise parameters of the filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KalmanConfig {
    /// Spectral density of the white-acceleration process noise, in
    /// m²/s³. Larger values let the filter track maneuvering objects.
    pub process_noise: f64,
    /// Standard deviation of the position measurements, in meters.
    pub measurement_std: f64,
    /// Initial velocity variance, in (m/s)².
    pub initial_velocity_var: f64,
}

impl Default for KalmanConfig {
    fn default() -> Self {
        KalmanConfig {
            process_noise: 1.0,
            measurement_std: 10.0,
            initial_velocity_var: 100.0,
        }
    }
}

/// A filtered/smoothed state estimate at a point in time.
#[derive(Debug, Clone, Copy)]
pub struct KalmanState {
    /// Time of the estimate, seconds.
    pub t: f64,
    /// State mean `[px, py, vx, vy]`.
    pub x: Vec4,
    /// State covariance.
    pub p: Mat4,
}

impl KalmanState {
    /// Estimated position.
    #[inline]
    pub fn position(&self) -> Point {
        Point::new(self.x[0], self.x[1])
    }

    /// Estimated velocity vector (m/s).
    #[inline]
    pub fn velocity(&self) -> Point {
        Point::new(self.x[2], self.x[3])
    }
}

/// 2-D constant-velocity Kalman filter over timestamped position fixes.
#[derive(Debug, Clone)]
pub struct KalmanFilter2D {
    config: KalmanConfig,
}

impl KalmanFilter2D {
    /// Creates a filter with the given noise configuration.
    pub fn new(config: KalmanConfig) -> Self {
        assert!(
            config.process_noise > 0.0 && config.measurement_std > 0.0,
            "Kalman noise parameters must be positive"
        );
        KalmanFilter2D { config }
    }

    fn transition(dt: f64) -> Mat4 {
        let mut f = identity();
        f[0][2] = dt;
        f[1][3] = dt;
        f
    }

    fn process_cov(&self, dt: f64) -> Mat4 {
        // Discretized white-acceleration noise (per axis):
        // Q = q * [dt³/3  dt²/2; dt²/2  dt]
        let q = self.config.process_noise;
        let dt2 = dt * dt;
        let dt3 = dt2 * dt;
        let mut m = [[0.0; 4]; 4];
        m[0][0] = q * dt3 / 3.0;
        m[1][1] = q * dt3 / 3.0;
        m[0][2] = q * dt2 / 2.0;
        m[2][0] = q * dt2 / 2.0;
        m[1][3] = q * dt2 / 2.0;
        m[3][1] = q * dt2 / 2.0;
        m[2][2] = q * dt;
        m[3][3] = q * dt;
        m
    }

    /// Runs the forward filter over timestamped observations (must be in
    /// nondecreasing time order) and returns the filtered state at each
    /// observation time. Panics on an empty slice.
    pub fn filter(&self, observations: &[(Point, f64)]) -> Vec<KalmanState> {
        assert!(!observations.is_empty(), "Kalman filter needs observations");
        let r2 = self.config.measurement_std * self.config.measurement_std;
        let (z0, t0) = observations[0];
        let mut x: Vec4 = [z0.x, z0.y, 0.0, 0.0];
        let mut p: Mat4 = [[0.0; 4]; 4];
        p[0][0] = r2;
        p[1][1] = r2;
        p[2][2] = self.config.initial_velocity_var;
        p[3][3] = self.config.initial_velocity_var;
        let mut states = Vec::with_capacity(observations.len());
        states.push(KalmanState { t: t0, x, p });

        for &(z, t) in &observations[1..] {
            let dt = (t - states.last().expect("non-empty").t).max(0.0);
            // Predict.
            let f = Self::transition(dt);
            x = mat_vec(&f, &x);
            p = mat_add(
                &mat_mul(&mat_mul(&f, &p), &mat_transpose(&f)),
                &self.process_cov(dt),
            );
            // Update with measurement z (H = [I2 0]).
            let y = [z.x - x[0], z.y - x[1]];
            // S = HPHᵀ + R (2x2), K = PHᵀ S⁻¹ (4x2).
            let s00 = p[0][0] + r2;
            let s01 = p[0][1];
            let s10 = p[1][0];
            let s11 = p[1][1] + r2;
            let det = s00 * s11 - s01 * s10;
            if det.abs() > 1e-12 {
                let inv = [[s11 / det, -s01 / det], [-s10 / det, s00 / det]];
                let mut k = [[0.0; 2]; 4];
                for i in 0..4 {
                    // PHᵀ column j is p[i][j] for j in 0..2.
                    for j in 0..2 {
                        k[i][j] = p[i][0] * inv[0][j] + p[i][1] * inv[1][j];
                    }
                }
                for i in 0..4 {
                    x[i] += k[i][0] * y[0] + k[i][1] * y[1];
                }
                // P = (I − K H) P ; KH only touches the first two columns.
                let mut kh = [[0.0; 4]; 4];
                for i in 0..4 {
                    kh[i][0] = k[i][0];
                    kh[i][1] = k[i][1];
                }
                p = mat_mul(&mat_sub(&identity(), &kh), &p);
            }
            states.push(KalmanState { t, x, p });
        }
        states
    }

    /// Rauch–Tung–Striebel smoother over the forward-filtered states.
    /// Falls back to the filtered estimate where the predicted covariance
    /// is singular (e.g. repeated timestamps).
    pub fn smooth(&self, observations: &[(Point, f64)]) -> Vec<KalmanState> {
        let filtered = self.filter(observations);
        let n = filtered.len();
        if n <= 1 {
            return filtered;
        }
        let mut smoothed = filtered.clone();
        for i in (0..n - 1).rev() {
            let dt = (filtered[i + 1].t - filtered[i].t).max(0.0);
            let f = Self::transition(dt);
            // Predicted state/cov from i to i+1.
            let x_pred = mat_vec(&f, &filtered[i].x);
            let p_pred = mat_add(
                &mat_mul(&mat_mul(&f, &filtered[i].p), &mat_transpose(&f)),
                &self.process_cov(dt),
            );
            let Some(p_pred_inv) = mat_inverse(&p_pred) else {
                continue;
            };
            // Smoother gain G = P_i Fᵀ P_pred⁻¹.
            let g = mat_mul(&mat_mul(&filtered[i].p, &mat_transpose(&f)), &p_pred_inv);
            let dx = [
                smoothed[i + 1].x[0] - x_pred[0],
                smoothed[i + 1].x[1] - x_pred[1],
                smoothed[i + 1].x[2] - x_pred[2],
                smoothed[i + 1].x[3] - x_pred[3],
            ];
            let corr = mat_vec(&g, &dx);
            for (j, c) in corr.iter().enumerate() {
                smoothed[i].x[j] = filtered[i].x[j] + c;
            }
            let dp = mat_sub(&smoothed[i + 1].p, &p_pred);
            smoothed[i].p = mat_add(
                &filtered[i].p,
                &mat_mul(&mat_mul(&g, &dp), &mat_transpose(&g)),
            );
        }
        smoothed
    }

    /// Position estimate at an arbitrary time `t`, by constant-velocity
    /// prediction from the nearest earlier state (or backward from the
    /// first state when `t` precedes the track).
    pub fn position_at(states: &[KalmanState], t: f64) -> Point {
        assert!(!states.is_empty(), "no states to interpolate");
        // Find the last state with state.t <= t.
        let idx = match states.binary_search_by(|s| s.t.partial_cmp(&t).expect("finite times")) {
            Ok(i) => i,
            Err(0) => {
                let s = &states[0];
                let dt = t - s.t; // negative: predict backwards
                return s.position() + s.velocity() * dt;
            }
            Err(i) => i - 1,
        };
        let s = &states[idx];
        let dt = t - s.t;
        s.position() + s.velocity() * dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight_track(noise: f64, seed: u64) -> Vec<(Point, f64)> {
        // Deterministic pseudo-noise via a tiny LCG so the test does not
        // depend on rand.
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Map to roughly [-1, 1].
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        (0..50)
            .map(|i| {
                let t = i as f64;
                let p = Point::new(2.0 * t + noise * next(), 1.0 * t + noise * next());
                (p, t)
            })
            .collect()
    }

    #[test]
    fn filter_tracks_constant_velocity() {
        let obs = straight_track(0.0, 1);
        let kf = KalmanFilter2D::new(KalmanConfig {
            process_noise: 0.1,
            measurement_std: 1.0,
            initial_velocity_var: 25.0,
        });
        let states = kf.filter(&obs);
        let last = states.last().unwrap();
        assert!((last.position().x - 98.0).abs() < 0.5);
        assert!((last.position().y - 49.0).abs() < 0.5);
        assert!((last.velocity().x - 2.0).abs() < 0.1);
        assert!((last.velocity().y - 1.0).abs() < 0.1);
    }

    #[test]
    fn filter_reduces_noise() {
        let clean = straight_track(0.0, 1);
        let noisy = straight_track(5.0, 42);
        let kf = KalmanFilter2D::new(KalmanConfig {
            process_noise: 0.05,
            measurement_std: 5.0,
            initial_velocity_var: 25.0,
        });
        let states = kf.filter(&noisy);
        // After convergence, filtered error should beat raw measurement
        // error on average (skip the first 10 warm-up steps).
        let mut raw_err = 0.0;
        let mut filt_err = 0.0;
        for i in 10..noisy.len() {
            raw_err += noisy[i].0.distance(&clean[i].0);
            filt_err += states[i].position().distance(&clean[i].0);
        }
        assert!(
            filt_err < raw_err,
            "filtered {filt_err} not better than raw {raw_err}"
        );
    }

    #[test]
    fn smoother_not_worse_than_filter() {
        let clean = straight_track(0.0, 1);
        let noisy = straight_track(5.0, 7);
        let kf = KalmanFilter2D::new(KalmanConfig {
            process_noise: 0.05,
            measurement_std: 5.0,
            initial_velocity_var: 25.0,
        });
        let filt = kf.filter(&noisy);
        let smooth = kf.smooth(&noisy);
        let err = |states: &[KalmanState]| -> f64 {
            states
                .iter()
                .zip(&clean)
                .map(|(s, (c, _))| s.position().distance(c))
                .sum::<f64>()
        };
        assert!(err(&smooth) <= err(&filt) * 1.05);
    }

    #[test]
    fn position_at_interpolates_and_extrapolates() {
        let obs = straight_track(0.0, 1);
        let kf = KalmanFilter2D::new(KalmanConfig::default());
        let states = kf.smooth(&obs);
        // Midpoint between t=20 and t=21 should be close to (41, 20.5).
        let mid = KalmanFilter2D::position_at(&states, 20.5);
        assert!((mid.x - 41.0).abs() < 1.0, "{mid}");
        assert!((mid.y - 20.5).abs() < 1.0, "{mid}");
        // Before the first observation: backward prediction stays finite.
        let before = KalmanFilter2D::position_at(&states, -1.0);
        assert!(before.is_finite());
        // After the last: forward prediction continues the motion.
        let after = KalmanFilter2D::position_at(&states, 60.0);
        assert!((after.x - 120.0).abs() < 5.0, "{after}");
    }

    #[test]
    fn single_observation() {
        let kf = KalmanFilter2D::new(KalmanConfig::default());
        let states = kf.smooth(&[(Point::new(3.0, 4.0), 10.0)]);
        assert_eq!(states.len(), 1);
        assert_eq!(states[0].position(), Point::new(3.0, 4.0));
        let p = KalmanFilter2D::position_at(&states, 12.0);
        assert!(p.is_finite());
    }

    #[test]
    fn repeated_timestamps_do_not_crash() {
        let obs = vec![
            (Point::new(0.0, 0.0), 0.0),
            (Point::new(1.0, 0.0), 0.0),
            (Point::new(2.0, 0.0), 1.0),
        ];
        let kf = KalmanFilter2D::new(KalmanConfig::default());
        let states = kf.smooth(&obs);
        assert_eq!(states.len(), 3);
        for s in &states {
            assert!(s.position().is_finite());
        }
    }

    #[test]
    fn mat_inverse_identity_and_known() {
        let i = identity();
        let inv = mat_inverse(&i).unwrap();
        for r in 0..4 {
            for c in 0..4 {
                assert!((inv[r][c] - i[r][c]).abs() < 1e-12);
            }
        }
        // A diagonal matrix inverts elementwise.
        let mut d = [[0.0; 4]; 4];
        d[0][0] = 2.0;
        d[1][1] = 4.0;
        d[2][2] = 0.5;
        d[3][3] = 10.0;
        let dinv = mat_inverse(&d).unwrap();
        assert!((dinv[0][0] - 0.5).abs() < 1e-12);
        assert!((dinv[1][1] - 0.25).abs() < 1e-12);
        assert!((dinv[2][2] - 2.0).abs() < 1e-12);
        assert!((dinv[3][3] - 0.1).abs() < 1e-12);
        // Singular matrix returns None.
        let z = [[0.0; 4]; 4];
        assert!(mat_inverse(&z).is_none());
    }

    #[test]
    #[should_panic]
    fn invalid_config_panics() {
        let _ = KalmanFilter2D::new(KalmanConfig {
            process_noise: 0.0,
            measurement_std: 1.0,
            initial_velocity_var: 1.0,
        });
    }
}
