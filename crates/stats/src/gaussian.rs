//! Univariate normal distribution and the error function.

use std::f64::consts::PI;

/// `sqrt(2π)`, the normalization constant of the Gaussian pdf.
pub const SQRT_2PI: f64 = 2.5066282746310002;

/// Error function `erf(x)`, Abramowitz & Stegun 7.1.26 rational
/// approximation (max absolute error ≈ 1.5e-7, ample for cdf use here).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// A univariate normal distribution `N(mean, std²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    mean: f64,
    std: f64,
}

impl Gaussian {
    /// The standard normal `N(0, 1)`.
    pub const STANDARD: Gaussian = Gaussian {
        mean: 0.0,
        std: 1.0,
    };

    /// Creates `N(mean, std²)`. Panics if `std` is not strictly positive
    /// and finite — a zero-variance "Gaussian" is a Dirac delta, which
    /// callers must handle explicitly.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(
            std.is_finite() && std > 0.0,
            "Gaussian std must be positive and finite, got {std}"
        );
        Gaussian { mean, std }
    }

    /// Mean of the distribution.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the distribution.
    #[inline]
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std;
        (-0.5 * z * z).exp() / (self.std * SQRT_2PI)
    }

    /// Natural log of the density at `x`.
    pub fn log_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std;
        -0.5 * z * z - (self.std * SQRT_2PI).ln()
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.std * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    /// The unnormalized Gaussian weight `exp(-d² / (2σ²))` used by the
    /// paper's Eq. 3 location-noise kernel (the `1/(σ√2π)` factor cancels
    /// under the per-timestamp normalization of Algorithm 1).
    pub fn unnormalized_weight(distance: f64, sigma: f64) -> f64 {
        debug_assert!(sigma > 0.0);
        (-(distance * distance) / (2.0 * sigma * sigma)).exp()
    }
}

/// Density of the standard normal at `x` — the Gaussian *kernel* `K(u)` of
/// the paper's KDE (Eq. 6).
#[inline]
pub fn standard_normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * PI).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
        assert!(erf(6.0) > 0.999999);
    }

    #[test]
    fn pdf_peak_and_symmetry() {
        let g = Gaussian::new(2.0, 3.0);
        let peak = g.pdf(2.0);
        assert!((peak - 1.0 / (3.0 * SQRT_2PI)).abs() < 1e-12);
        assert!((g.pdf(2.0 + 1.5) - g.pdf(2.0 - 1.5)).abs() < 1e-12);
        assert!(g.pdf(2.0 + 1.0) < peak);
    }

    #[test]
    fn log_pdf_consistent_with_pdf() {
        let g = Gaussian::new(-1.0, 0.5);
        for x in [-3.0, -1.0, 0.0, 2.0] {
            assert!((g.log_pdf(x) - g.pdf(x).ln()).abs() < 1e-10);
        }
    }

    #[test]
    fn cdf_properties() {
        let g = Gaussian::STANDARD;
        assert!((g.cdf(0.0) - 0.5).abs() < 1e-7);
        assert!(g.cdf(-5.0) < 1e-5);
        assert!(g.cdf(5.0) > 1.0 - 1e-5);
        // ~68% within one sigma.
        let within = g.cdf(1.0) - g.cdf(-1.0);
        assert!((within - 0.6827).abs() < 1e-3);
    }

    #[test]
    fn cdf_monotone() {
        let g = Gaussian::new(1.0, 2.0);
        let mut prev = 0.0;
        for i in -50..=50 {
            let x = i as f64 / 5.0;
            let c = g.cdf(x);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        let g = Gaussian::new(0.0, 1.7);
        let mut sum = 0.0;
        let dx = 0.01;
        let mut x = -20.0;
        while x < 20.0 {
            sum += g.pdf(x) * dx;
            x += dx;
        }
        assert!((sum - 1.0).abs() < 1e-3, "integral {sum}");
    }

    #[test]
    #[should_panic]
    fn zero_std_panics() {
        let _ = Gaussian::new(0.0, 0.0);
    }

    #[test]
    fn unnormalized_weight_behaviour() {
        assert!((Gaussian::unnormalized_weight(0.0, 5.0) - 1.0).abs() < 1e-12);
        let near = Gaussian::unnormalized_weight(1.0, 5.0);
        let far = Gaussian::unnormalized_weight(10.0, 5.0);
        assert!(near > far);
        assert!(far > 0.0);
        // Matches exp(-d^2 / 2σ²) exactly: d = σ gives exp(-1/2).
        assert!((Gaussian::unnormalized_weight(5.0, 5.0) - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn standard_kernel_matches_standard_gaussian() {
        for x in [-2.0, -0.3, 0.0, 1.1, 3.0] {
            assert!((standard_normal_pdf(x) - Gaussian::STANDARD.pdf(x)).abs() < 1e-12);
        }
    }
}
