//! Brownian-bridge location model.
//!
//! Between two fixes `(a, t_a)` and `(b, t_b)`, a Brownian bridge models
//! the in-between position at time `t` as an isotropic Gaussian centered
//! on the linear interpolation with variance
//!
//! ```text
//! σ²(t) = σ_m² · (t − t_a)(t_b − t) / (t_b − t_a)
//! ```
//!
//! where `σ_m²` is the diffusion coefficient (m²/s). The paper (§II) notes
//! Brownian bridges [36], [37] are the special case of STS's transition
//! estimator when the speed distribution is assumed Gaussian; we implement
//! the bridge both to demonstrate that relationship (see the tests in
//! `sts-core`) and as an alternative `TransitionModel`.

use crate::gaussian::SQRT_2PI;
use sts_geo::Point;

/// A Brownian bridge pinned at two timestamped fixes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownianBridge {
    /// Start fix.
    pub a: Point,
    /// Start time (s).
    pub t_a: f64,
    /// End fix.
    pub b: Point,
    /// End time (s); must be strictly greater than `t_a`.
    pub t_b: f64,
    /// Diffusion coefficient σ_m², in m²/s.
    pub diffusion: f64,
}

impl BrownianBridge {
    /// Creates a bridge. Panics when `t_b <= t_a` or diffusion is not
    /// strictly positive.
    pub fn new(a: Point, t_a: f64, b: Point, t_b: f64, diffusion: f64) -> Self {
        assert!(t_b > t_a, "bridge needs t_b > t_a (got {t_a}..{t_b})");
        assert!(
            diffusion > 0.0 && diffusion.is_finite(),
            "diffusion must be positive"
        );
        BrownianBridge {
            a,
            t_a,
            b,
            t_b,
            diffusion,
        }
    }

    /// Mean position at `t` (clamped to the bridge's time span): the
    /// linear interpolation between the fixes.
    pub fn mean_at(&self, t: f64) -> Point {
        let s = ((t - self.t_a) / (self.t_b - self.t_a)).clamp(0.0, 1.0);
        self.a.lerp(&self.b, s)
    }

    /// Positional variance (per axis) at `t`; zero at the pinned ends.
    pub fn variance_at(&self, t: f64) -> f64 {
        let t = t.clamp(self.t_a, self.t_b);
        self.diffusion * (t - self.t_a) * (self.t_b - t) / (self.t_b - self.t_a)
    }

    /// Isotropic 2-D Gaussian density of the bridge position at `p`,
    /// time `t`. At the pinned endpoints (zero variance) the density is a
    /// Dirac delta; we return `+∞` at the exact pin and `0` elsewhere.
    pub fn density_at(&self, p: Point, t: f64) -> f64 {
        let var = self.variance_at(t);
        let mean = self.mean_at(t);
        if var == 0.0 {
            return if p.distance(&mean) == 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
        }
        let d2 = p.distance_sq(&mean);
        (-(d2) / (2.0 * var)).exp() / (var * SQRT_2PI * SQRT_2PI)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bridge() -> BrownianBridge {
        BrownianBridge::new(Point::new(0.0, 0.0), 0.0, Point::new(10.0, 0.0), 10.0, 2.0)
    }

    #[test]
    fn mean_is_linear_interpolation() {
        let b = bridge();
        assert_eq!(b.mean_at(0.0), Point::new(0.0, 0.0));
        assert_eq!(b.mean_at(5.0), Point::new(5.0, 0.0));
        assert_eq!(b.mean_at(10.0), Point::new(10.0, 0.0));
        // Clamped outside.
        assert_eq!(b.mean_at(-3.0), Point::new(0.0, 0.0));
        assert_eq!(b.mean_at(13.0), Point::new(10.0, 0.0));
    }

    #[test]
    fn variance_vanishes_at_pins_and_peaks_in_middle() {
        let b = bridge();
        assert_eq!(b.variance_at(0.0), 0.0);
        assert_eq!(b.variance_at(10.0), 0.0);
        let mid = b.variance_at(5.0);
        assert!((mid - 2.0 * 5.0 * 5.0 / 10.0).abs() < 1e-12); // σ_m²·t(T−t)/T = 5
        assert!(b.variance_at(2.0) < mid);
        assert!(b.variance_at(8.0) < mid);
        // Symmetric in time.
        assert!((b.variance_at(2.0) - b.variance_at(8.0)).abs() < 1e-12);
    }

    #[test]
    fn density_peaks_on_the_line() {
        let b = bridge();
        let on = b.density_at(Point::new(5.0, 0.0), 5.0);
        let off = b.density_at(Point::new(5.0, 3.0), 5.0);
        assert!(on > off);
        assert!(off > 0.0);
    }

    #[test]
    fn density_integrates_to_one_mid_bridge() {
        let b = bridge();
        let t = 5.0;
        let step = 0.2;
        let mut sum = 0.0;
        let mut x = -20.0;
        while x < 30.0 {
            let mut y = -25.0;
            while y < 25.0 {
                sum += b.density_at(Point::new(x, y), t) * step * step;
                y += step;
            }
            x += step;
        }
        assert!((sum - 1.0).abs() < 1e-2, "integral {sum}");
    }

    #[test]
    fn pinned_endpoint_density_is_delta() {
        let b = bridge();
        assert_eq!(b.density_at(Point::new(0.0, 0.0), 0.0), f64::INFINITY);
        assert_eq!(b.density_at(Point::new(1.0, 0.0), 0.0), 0.0);
    }

    #[test]
    #[should_panic]
    fn inverted_times_panic() {
        let _ = BrownianBridge::new(Point::ORIGIN, 5.0, Point::ORIGIN, 1.0, 1.0);
    }
}
