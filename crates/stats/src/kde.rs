//! Kernel density estimation (paper §IV-B, Eq. 6–7).
//!
//! Given speed samples `S` drawn from an unknown density `Q`, the
//! estimator is
//!
//! ```text
//! Q̂(v) = 1/(h|S|) Σ_{v'∈S} K((v − v') / h)
//! ```
//!
//! with the Gaussian kernel and Silverman's rule-of-thumb bandwidth
//! `h = (4σ̂⁵ / (3|S|))^{1/5}` (the paper's "optimal bandwidth" [40]).
//!
//! The paper's transition probability (Eq. 7) is the *bandwidth-scaled*
//! density `h·Q̂(v) = (1/|S|) Σ K((v−v')/h)`, which is conveniently
//! bounded in `[0, K(0)]`; [`Kde::scaled_density`] computes it directly.

use crate::kernel::Kernel;
use crate::summary;
use std::fmt;

/// Errors constructing a [`Kde`].
#[derive(Debug, Clone, PartialEq)]
pub enum KdeError {
    /// No samples were provided.
    NoSamples,
    /// A sample was NaN or infinite.
    NonFiniteSample(f64),
    /// An explicit bandwidth was zero, negative or non-finite.
    InvalidBandwidth(f64),
}

impl fmt::Display for KdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KdeError::NoSamples => write!(f, "KDE requires at least one sample"),
            KdeError::NonFiniteSample(s) => write!(f, "non-finite KDE sample: {s}"),
            KdeError::InvalidBandwidth(h) => write!(f, "invalid KDE bandwidth: {h}"),
        }
    }
}

impl std::error::Error for KdeError {}

/// A univariate kernel density estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct Kde {
    samples: Vec<f64>,
    bandwidth: f64,
    kernel: Kernel,
}

impl Kde {
    /// Bandwidth floor used when Silverman's rule degenerates (all samples
    /// identical ⇒ σ̂ = 0 ⇒ h = 0, which would make the estimator a sum of
    /// Dirac deltas). The floor keeps the estimator a proper density. The
    /// value is in the units of the samples (m/s for speed models); 0.05
    /// is far below any walking/driving speed scale of interest.
    pub const BANDWIDTH_FLOOR: f64 = 0.05;

    /// Builds an estimator with Silverman's rule-of-thumb bandwidth.
    pub fn new(samples: Vec<f64>, kernel: Kernel) -> Result<Self, KdeError> {
        let h = Self::silverman_bandwidth(&samples)?;
        Self::with_bandwidth(samples, kernel, h)
    }

    /// Builds an estimator with an explicit bandwidth.
    pub fn with_bandwidth(
        samples: Vec<f64>,
        kernel: Kernel,
        bandwidth: f64,
    ) -> Result<Self, KdeError> {
        if samples.is_empty() {
            return Err(KdeError::NoSamples);
        }
        if let Some(&bad) = samples.iter().find(|s| !s.is_finite()) {
            return Err(KdeError::NonFiniteSample(bad));
        }
        if !bandwidth.is_finite() || bandwidth <= 0.0 {
            return Err(KdeError::InvalidBandwidth(bandwidth));
        }
        Ok(Kde {
            samples,
            bandwidth,
            kernel,
        })
    }

    /// Silverman's rule-of-thumb bandwidth `(4σ̂⁵ / (3n))^{1/5}` as used by
    /// the paper, with the degenerate case floored to
    /// [`Kde::BANDWIDTH_FLOOR`].
    pub fn silverman_bandwidth(samples: &[f64]) -> Result<f64, KdeError> {
        if samples.is_empty() {
            return Err(KdeError::NoSamples);
        }
        if let Some(&bad) = samples.iter().find(|s| !s.is_finite()) {
            return Err(KdeError::NonFiniteSample(bad));
        }
        let sigma = summary::std_dev(samples).expect("non-empty");
        let n = samples.len() as f64;
        let h = (4.0 * sigma.powi(5) / (3.0 * n)).powf(0.2);
        Ok(if h.is_finite() && h > Self::BANDWIDTH_FLOOR {
            h
        } else {
            Self::BANDWIDTH_FLOOR
        })
    }

    /// The samples the estimator was built from.
    #[inline]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The bandwidth `h`.
    #[inline]
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// The kernel in use.
    #[inline]
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The density estimate `Q̂(x)` (Eq. 6). Integrates to 1 over ℝ.
    pub fn density(&self, x: f64) -> f64 {
        self.scaled_density(x) / self.bandwidth
    }

    /// The bandwidth-scaled density `h·Q̂(x) = (1/n) Σ K((x−xᵢ)/h)`
    /// (Eq. 7) — the paper's transition probability form, bounded in
    /// `[0, K(0)]`.
    pub fn scaled_density(&self, x: f64) -> f64 {
        self.scaled_density_with_bandwidth(x, self.bandwidth)
    }

    /// [`Kde::scaled_density`] evaluated with an explicit bandwidth
    /// (≥ the estimator's own): `(1/n) Σ K((x−xᵢ)/h')`. Used to fold an
    /// additional smoothing term (e.g. grid-quantization uncertainty)
    /// into the evaluation without rebuilding the estimator.
    pub fn scaled_density_with_bandwidth(&self, x: f64, bandwidth: f64) -> f64 {
        debug_assert!(bandwidth > 0.0);
        let n = self.samples.len() as f64;
        let support = self.kernel.support_radius() * bandwidth;
        let mut acc = 0.0;
        for &s in &self.samples {
            let d = x - s;
            if d.abs() <= support {
                acc += self.kernel.evaluate(d / bandwidth);
            }
        }
        acc / n
    }

    /// Approximate CDF by numerically integrating the density on
    /// `(-∞, x]`; used in tests and sanity checks only.
    pub fn cdf_numeric(&self, x: f64, step: f64) -> f64 {
        let lo = summary::min(&self.samples).expect("non-empty")
            - self.kernel.support_radius() * self.bandwidth;
        let mut acc = 0.0;
        let mut t = lo;
        while t < x {
            acc += self.density(t) * step;
            t += step;
        }
        acc.min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_errors() {
        assert_eq!(Kde::new(vec![], Kernel::Gaussian), Err(KdeError::NoSamples));
        assert!(matches!(
            Kde::new(vec![1.0, f64::NAN], Kernel::Gaussian),
            Err(KdeError::NonFiniteSample(_))
        ));
        assert!(matches!(
            Kde::with_bandwidth(vec![1.0], Kernel::Gaussian, 0.0),
            Err(KdeError::InvalidBandwidth(_))
        ));
        assert!(matches!(
            Kde::with_bandwidth(vec![1.0], Kernel::Gaussian, -1.0),
            Err(KdeError::InvalidBandwidth(_))
        ));
    }

    #[test]
    fn silverman_matches_formula() {
        let samples = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let sigma = crate::summary::std_dev(&samples).unwrap();
        let expect = (4.0 * sigma.powi(5) / (3.0 * 5.0)).powf(0.2);
        let h = Kde::silverman_bandwidth(&samples).unwrap();
        assert!((h - expect).abs() < 1e-12);
    }

    #[test]
    fn degenerate_samples_get_floor_bandwidth() {
        let h = Kde::silverman_bandwidth(&[2.0, 2.0, 2.0]).unwrap();
        assert_eq!(h, Kde::BANDWIDTH_FLOOR);
        let kde = Kde::new(vec![2.0, 2.0, 2.0], Kernel::Gaussian).unwrap();
        assert!(kde.density(2.0).is_finite());
        assert!(kde.density(2.0) > 0.0);
    }

    #[test]
    fn density_integrates_to_one() {
        for kernel in crate::kernel::ALL_KERNELS {
            let kde = Kde::new(vec![0.5, 1.0, 1.5, 2.2, 3.0, 1.1], kernel).unwrap();
            let step = 1e-3;
            let mut sum = 0.0;
            let mut x = -10.0;
            while x < 15.0 {
                sum += kde.density(x) * step;
                x += step;
            }
            assert!((sum - 1.0).abs() < 5e-3, "{kernel:?} integral {sum}");
        }
    }

    #[test]
    fn density_peaks_near_sample_mass() {
        let kde = Kde::new(vec![1.0, 1.1, 0.9, 1.05, 5.0], Kernel::Gaussian).unwrap();
        assert!(kde.density(1.0) > kde.density(3.0));
        assert!(kde.density(5.0) > kde.density(8.0));
    }

    #[test]
    fn scaled_density_is_bandwidth_times_density() {
        let kde = Kde::new(vec![0.0, 1.0, 2.0], Kernel::Gaussian).unwrap();
        for x in [-1.0, 0.0, 0.7, 2.5] {
            let a = kde.scaled_density(x);
            let b = kde.density(x) * kde.bandwidth();
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn scaled_density_bounded_by_kernel_peak() {
        for kernel in crate::kernel::ALL_KERNELS {
            let kde = Kde::new(vec![1.0, 1.0, 1.0, 1.0], kernel).unwrap();
            let peak = kernel.evaluate(0.0);
            for i in 0..100 {
                let x = i as f64 * 0.05;
                assert!(kde.scaled_density(x) <= peak + 1e-12);
            }
            // At the common sample value, the scaled density is exactly K(0).
            assert!((kde.scaled_density(1.0) - peak).abs() < 1e-12);
        }
    }

    #[test]
    fn truncation_does_not_change_gaussian_results() {
        // A sample far away contributes ~0; the support truncation must
        // agree with the brute-force sum.
        let samples = vec![0.0, 100.0];
        let kde = Kde::with_bandwidth(samples.clone(), Kernel::Gaussian, 1.0).unwrap();
        let brute = |x: f64| -> f64 {
            samples
                .iter()
                .map(|s| Kernel::Gaussian.evaluate(x - s))
                .sum::<f64>()
                / samples.len() as f64
        };
        for x in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert!((kde.scaled_density(x) - brute(x)).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn cdf_numeric_reaches_one() {
        let kde = Kde::new(vec![1.0, 2.0, 3.0], Kernel::Epanechnikov).unwrap();
        let c = kde.cdf_numeric(10.0, 1e-3);
        assert!((c - 1.0).abs() < 5e-3, "cdf {c}");
        assert!(kde.cdf_numeric(-10.0, 1e-3) < 1e-6);
    }

    #[test]
    fn more_samples_tighter_bandwidth() {
        let few: Vec<f64> = (0..10).map(|i| i as f64 * 0.1).collect();
        let many: Vec<f64> = (0..1000).map(|i| (i % 10) as f64 * 0.1).collect();
        let h_few = Kde::silverman_bandwidth(&few).unwrap();
        let h_many = Kde::silverman_bandwidth(&many).unwrap();
        assert!(h_many < h_few);
    }
}
