//! Descriptive statistics over `f64` samples.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance (divide by `n`); `None` for an empty slice.
///
/// Silverman's rule as written in the paper uses the plain standard
/// deviation of the speed samples, so the population form is the default
/// here; [`sample_variance`] provides the `n−1` form.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Sample variance (divide by `n−1`); `None` when fewer than 2 samples.
pub fn sample_variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs).expect("non-empty");
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Minimum (ignoring NaN ordering issues by folding); `None` when empty.
pub fn min(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().copied().fold(f64::INFINITY, f64::min))
    }
}

/// Maximum; `None` when empty.
pub fn max(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().copied().fold(f64::NEG_INFINITY, f64::max))
    }
}

/// Linear-interpolated quantile `q ∈ [0, 1]` of the samples; `None` when
/// empty or `q` out of range. Sorts a copy — fine for evaluation-sized data.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in quantile input"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(v[lo] + (v[hi] - v[lo]) * frac)
}

/// Median (the 0.5 quantile).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    const XS: [f64; 5] = [2.0, 4.0, 4.0, 4.0, 6.0];

    #[test]
    fn mean_variance_std() {
        assert_eq!(mean(&XS), Some(4.0));
        assert!((variance(&XS).unwrap() - 1.6).abs() < 1e-12);
        assert!((std_dev(&XS).unwrap() - 1.6f64.sqrt()).abs() < 1e-12);
        assert!((sample_variance(&XS).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
        assert_eq!(std_dev(&[]), None);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(sample_variance(&[1.0]), None);
    }

    #[test]
    fn single_sample() {
        assert_eq!(mean(&[7.0]), Some(7.0));
        assert_eq!(variance(&[7.0]), Some(0.0));
        assert_eq!(median(&[7.0]), Some(7.0));
    }

    #[test]
    fn min_max() {
        assert_eq!(min(&XS), Some(2.0));
        assert_eq!(max(&XS), Some(6.0));
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(median(&xs), Some(2.5));
        assert_eq!(quantile(&xs, 2.0), None);
        // Order-independence.
        let shuffled = [3.0, 1.0, 4.0, 2.0];
        assert_eq!(median(&shuffled), Some(2.5));
    }
}
