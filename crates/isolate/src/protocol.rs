//! The length-prefixed line protocol between supervisor and worker.
//!
//! Same zero-dependency text style as the `checkpoint` and
//! `sts-traj::io` formats, with one addition: every frame carries its
//! own byte length up front, so the reader can tell a *torn* or
//! *garbage* frame from a merely unexpected one.
//!
//! ```text
//! <len> <body>\n
//! ```
//!
//! `<len>` is the decimal byte length of `<body>` (exclusive of the
//! separating space and the trailing newline). A frame whose length
//! field is non-numeric, whose body is shorter or longer than
//! declared, or whose terminator is missing is a [`ProtocolError`] —
//! the signal the supervisor uses to classify a worker as emitting
//! garbage and discard it.
//!
//! The body itself is a whitespace-separated record in the in-repo
//! text style (`chunk 3 128 64`, `result 3 64 …`); this module only
//! frames and unframes, it does not interpret bodies.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Longest body the default reader will allocate for (64 MiB). A
/// garbage length field must not become an OOM — the same
/// untrusted-count guard the lenient trajectory reader uses. Endpoints
/// with a tighter budget (a streaming ingest server does not want to
/// buffer a 64 MiB "ping") pass their own cap to
/// [`read_frame_capped`].
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// A protocol violation: the peer's bytes do not form a valid frame.
#[derive(Debug)]
pub enum ProtocolError {
    /// Underlying I/O failure (broken pipe when the peer died, …).
    Io(io::Error),
    /// The stream ended cleanly where a frame was expected.
    Eof,
    /// The bytes on the wire do not parse as a frame.
    Garbage {
        /// What was wrong with them.
        message: String,
    },
    /// The frame exceeds the endpoint's byte cap — either its declared
    /// length field, or the raw line itself before a terminator was
    /// seen. The oversize bytes were *not* buffered; the stream is
    /// mid-frame and the only sound recovery is to drop the connection.
    FrameTooLarge {
        /// The declared body length (or, for an unterminated line, the
        /// number of bytes observed before giving up).
        declared: usize,
        /// The cap in force at this endpoint.
        cap: usize,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "protocol I/O error: {e}"),
            ProtocolError::Eof => write!(f, "unexpected end of stream"),
            ProtocolError::Garbage { message } => write!(f, "garbage frame: {message}"),
            ProtocolError::FrameTooLarge { declared, cap } => {
                write!(f, "frame of {declared} byte(s) exceeds the {cap}-byte cap")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Writes one frame (`<len> <body>\n`) and flushes. Flushing per frame
/// is deliberate: frames are small, rare relative to the chunk work
/// they describe, and the peer blocks on them.
///
/// The frame is staged in one buffer and written with a single
/// `write_all`: formatting straight into an unbuffered `TcpStream`
/// emits one segment per format fragment, and Nagle + delayed-ACK
/// turns that into ~40 ms per stall on loopback.
pub fn write_frame<W: Write>(w: &mut W, body: &str) -> io::Result<()> {
    debug_assert!(!body.contains('\n'), "frame bodies are single-line");
    let mut line = String::with_capacity(body.len() + 12);
    use std::fmt::Write as _;
    let _ = write!(line, "{} {body}\n", body.len());
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Reads one frame, validating the length prefix against the body,
/// under the workspace-default [`MAX_FRAME_BYTES`] cap.
pub fn read_frame<R: BufRead>(r: &mut R) -> Result<String, ProtocolError> {
    read_frame_capped(r, MAX_FRAME_BYTES)
}

/// Reads one frame under an endpoint-specific byte cap.
///
/// The cap bounds *allocation*, not just acceptance: both the declared
/// length field and the raw wire line are checked as bytes stream in,
/// so neither a lying length prefix nor an endless unterminated line
/// can make this endpoint buffer more than `cap` bytes (plus the few
/// bytes of prefix framing). A breach is the typed
/// [`ProtocolError::FrameTooLarge`]; the stream is mid-frame at that
/// point, so callers must discard the connection.
pub fn read_frame_capped<R: BufRead>(r: &mut R, cap: usize) -> Result<String, ProtocolError> {
    // Room for "<len> " and the '\n' on top of a cap-sized body: the
    // length field of a cap-sized frame is at most 20 digits.
    let wire_cap = cap.saturating_add(24);
    let mut raw: Vec<u8> = Vec::new();
    let terminated = loop {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            if raw.is_empty() {
                return Err(ProtocolError::Eof);
            }
            break false;
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if raw.len() + pos > wire_cap {
                    let declared = raw.len() + pos;
                    return Err(ProtocolError::FrameTooLarge { declared, cap });
                }
                raw.extend_from_slice(&buf[..pos]);
                r.consume(pos + 1);
                break true;
            }
            None => {
                let n = buf.len();
                if raw.len() + n > wire_cap {
                    // Oversize before any terminator: stop buffering
                    // now. The unread remainder stays in the stream
                    // (the connection is poisoned by contract).
                    let declared = raw.len() + n;
                    r.consume(n);
                    return Err(ProtocolError::FrameTooLarge { declared, cap });
                }
                raw.extend_from_slice(buf);
                r.consume(n);
            }
        }
    };
    let garbage = |message: String| ProtocolError::Garbage { message };
    let line = String::from_utf8(raw).map_err(|e| {
        garbage(format!(
            "frame is not UTF-8 ({} byte(s))",
            e.as_bytes().len()
        ))
    })?;
    if !terminated {
        return Err(garbage(format!(
            "missing newline terminator after {} byte(s)",
            line.len()
        )));
    }
    let Some((len_field, body)) = line.split_once(' ') else {
        return Err(garbage(format!(
            "no length prefix in {:?}",
            truncate_for_error(&line)
        )));
    };
    let declared: usize = len_field.parse().map_err(|_| {
        garbage(format!(
            "non-numeric length {:?}",
            truncate_for_error(len_field)
        ))
    })?;
    if declared > cap {
        return Err(ProtocolError::FrameTooLarge { declared, cap });
    }
    if declared != body.len() {
        return Err(garbage(format!(
            "declared length {declared} but body has {} byte(s)",
            body.len()
        )));
    }
    Ok(body.to_string())
}

/// First few bytes of a bad frame, for error messages (garbage can be
/// arbitrarily long binary noise).
fn truncate_for_error(s: &str) -> String {
    let mut t: String = s.chars().take(32).collect();
    if t.len() < s.len() {
        t.push('…');
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(body: &str) -> String {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, body).unwrap();
        read_frame(&mut bytes.as_slice()).unwrap()
    }

    #[test]
    fn frames_round_trip() {
        for body in ["ready", "", "chunk 3 128 64", "result 0 1 17 s 0.25"] {
            assert_eq!(round_trip(body), body);
        }
    }

    #[test]
    fn multiple_frames_stream() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, "a").unwrap();
        write_frame(&mut bytes, "bb cc").unwrap();
        let mut r = bytes.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), "a");
        assert_eq!(read_frame(&mut r).unwrap(), "bb cc");
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::Eof)));
    }

    #[test]
    fn garbage_is_detected() {
        for (wire, why) in [
            ("hello world\n", "non-numeric length"),
            ("5 abc\n", "declared length 5 but body has 3"),
            ("2 abc\n", "declared length 2 but body has 3"),
            ("nolengthprefix\n", "no length prefix"),
            ("3 abc", "missing newline"),
            ("99999999999999999999 x\n", "non-numeric length"),
            ("999999999999 x\n", "exceeds"),
        ] {
            let err = read_frame(&mut wire.as_bytes()).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(why), "{wire:?} -> {msg} (wanted {why:?})");
        }
    }

    #[test]
    fn binary_noise_is_garbage_not_a_panic() {
        // Invalid UTF-8 and printable noise both land in a typed
        // Garbage error, never a panic.
        let noise: &[u8] = &[0xFF, 0xFE, 0x00, b'\n'];
        assert!(matches!(
            read_frame(&mut &noise[..]),
            Err(ProtocolError::Garbage { .. })
        ));
        let printable = "!!!###$$$\n";
        assert!(matches!(
            read_frame(&mut printable.as_bytes()),
            Err(ProtocolError::Garbage { .. })
        ));
    }

    #[test]
    fn endpoint_cap_boundary_is_exact() {
        let cap = 64usize;
        // A body of exactly `cap` bytes passes.
        let body = "x".repeat(cap);
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        assert_eq!(read_frame_capped(&mut wire.as_slice(), cap).unwrap(), body);
        // One byte more is the typed FrameTooLarge, carrying both the
        // declared length and the cap in force.
        let body = "x".repeat(cap + 1);
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        let err = read_frame_capped(&mut wire.as_slice(), cap).unwrap_err();
        assert!(
            matches!(
                err,
                ProtocolError::FrameTooLarge { declared, cap: c } if declared == cap + 1 && c == cap
            ),
            "{err}"
        );
    }

    #[test]
    fn lying_length_prefix_is_too_large_without_allocation() {
        // A declared length over the cap is rejected from the prefix
        // alone — the (short) wire line never allocates `declared`.
        let wire = "4096 tiny\n";
        let err = read_frame_capped(&mut wire.as_bytes(), 64).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::FrameTooLarge {
                declared: 4096,
                cap: 64
            }
        ));
    }

    #[test]
    fn unterminated_flood_is_bounded_by_the_cap() {
        // A slowloris-style endless line with no newline must not
        // buffer past the cap: the reader gives up with the typed
        // error after ~cap bytes, leaving the rest unread.
        let flood = vec![b'z'; 1 << 16];
        let mut r = std::io::BufReader::with_capacity(256, &flood[..]);
        let err = read_frame_capped(&mut r, 64).unwrap_err();
        assert!(
            matches!(err, ProtocolError::FrameTooLarge { cap: 64, .. }),
            "{err}"
        );
    }

    #[test]
    fn default_cap_is_max_frame_bytes() {
        // `read_frame` keeps the historical 64 MiB default.
        let wire = format!("{} x\n", MAX_FRAME_BYTES + 1);
        let err = read_frame(&mut wire.as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::FrameTooLarge {
                cap: MAX_FRAME_BYTES,
                ..
            }
        ));
    }
}
