//! The length-prefixed line protocol between supervisor and worker.
//!
//! Same zero-dependency text style as the `checkpoint` and
//! `sts-traj::io` formats, with one addition: every frame carries its
//! own byte length up front, so the reader can tell a *torn* or
//! *garbage* frame from a merely unexpected one.
//!
//! ```text
//! <len> <body>\n
//! ```
//!
//! `<len>` is the decimal byte length of `<body>` (exclusive of the
//! separating space and the trailing newline). A frame whose length
//! field is non-numeric, whose body is shorter or longer than
//! declared, or whose terminator is missing is a [`ProtocolError`] —
//! the signal the supervisor uses to classify a worker as emitting
//! garbage and discard it.
//!
//! The body itself is a whitespace-separated record in the in-repo
//! text style (`chunk 3 128 64`, `result 3 64 …`); this module only
//! frames and unframes, it does not interpret bodies.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Longest body the reader will allocate for (64 MiB). A garbage
/// length field must not become an OOM — the same untrusted-count
/// guard the lenient trajectory reader uses.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// A protocol violation: the peer's bytes do not form a valid frame.
#[derive(Debug)]
pub enum ProtocolError {
    /// Underlying I/O failure (broken pipe when the peer died, …).
    Io(io::Error),
    /// The stream ended cleanly where a frame was expected.
    Eof,
    /// The bytes on the wire do not parse as a frame.
    Garbage {
        /// What was wrong with them.
        message: String,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "protocol I/O error: {e}"),
            ProtocolError::Eof => write!(f, "unexpected end of stream"),
            ProtocolError::Garbage { message } => write!(f, "garbage frame: {message}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Writes one frame (`<len> <body>\n`) and flushes. Flushing per frame
/// is deliberate: frames are small, rare relative to the chunk work
/// they describe, and the peer blocks on them.
pub fn write_frame<W: Write>(w: &mut W, body: &str) -> io::Result<()> {
    debug_assert!(!body.contains('\n'), "frame bodies are single-line");
    write!(w, "{} {body}\n", body.len())?;
    w.flush()
}

/// Reads one frame, validating the length prefix against the body.
pub fn read_frame<R: BufRead>(r: &mut R) -> Result<String, ProtocolError> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Err(ProtocolError::Eof);
    }
    let garbage = |message: String| ProtocolError::Garbage { message };
    let Some(stripped) = line.strip_suffix('\n') else {
        return Err(garbage(format!(
            "missing newline terminator after {} byte(s)",
            line.len()
        )));
    };
    let Some((len_field, body)) = stripped.split_once(' ') else {
        return Err(garbage(format!(
            "no length prefix in {:?}",
            truncate_for_error(stripped)
        )));
    };
    let declared: usize = len_field.parse().map_err(|_| {
        garbage(format!(
            "non-numeric length {:?}",
            truncate_for_error(len_field)
        ))
    })?;
    if declared > MAX_FRAME_BYTES {
        return Err(garbage(format!(
            "declared length {declared} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    if declared != body.len() {
        return Err(garbage(format!(
            "declared length {declared} but body has {} byte(s)",
            body.len()
        )));
    }
    Ok(body.to_string())
}

/// First few bytes of a bad frame, for error messages (garbage can be
/// arbitrarily long binary noise).
fn truncate_for_error(s: &str) -> String {
    let mut t: String = s.chars().take(32).collect();
    if t.len() < s.len() {
        t.push('…');
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(body: &str) -> String {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, body).unwrap();
        read_frame(&mut bytes.as_slice()).unwrap()
    }

    #[test]
    fn frames_round_trip() {
        for body in ["ready", "", "chunk 3 128 64", "result 0 1 17 s 0.25"] {
            assert_eq!(round_trip(body), body);
        }
    }

    #[test]
    fn multiple_frames_stream() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, "a").unwrap();
        write_frame(&mut bytes, "bb cc").unwrap();
        let mut r = bytes.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), "a");
        assert_eq!(read_frame(&mut r).unwrap(), "bb cc");
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::Eof)));
    }

    #[test]
    fn garbage_is_detected() {
        for (wire, why) in [
            ("hello world\n", "non-numeric length"),
            ("5 abc\n", "declared length 5 but body has 3"),
            ("2 abc\n", "declared length 2 but body has 3"),
            ("nolengthprefix\n", "no length prefix"),
            ("3 abc", "missing newline"),
            ("99999999999999999999 x\n", "non-numeric length"),
            ("999999999999 x\n", "exceeds"),
        ] {
            let err = read_frame(&mut wire.as_bytes()).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(why), "{wire:?} -> {msg} (wanted {why:?})");
        }
    }

    #[test]
    fn binary_noise_is_garbage_not_a_panic() {
        // Invalid UTF-8 arrives as an I/O error from read_line;
        // valid-UTF-8 noise lands in Garbage. Either way: typed error.
        let noise: &[u8] = &[0xFF, 0xFE, 0x00, b'\n'];
        assert!(read_frame(&mut &noise[..]).is_err());
        let printable = "!!!###$$$\n";
        assert!(read_frame(&mut printable.as_bytes()).is_err());
    }
}
