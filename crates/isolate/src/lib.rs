#![warn(missing_docs)]
//! # sts-isolate — process-isolated worker supervision
//!
//! `catch_unwind` (the in-process supervised pool) contains panics,
//! but not the failure modes that actually kill long batch jobs at
//! production scale: aborts, stack overflows, OOM kills, and wedged
//! computations that never reach a cancellation checkpoint. The
//! standard answer is process-level isolation — a crashed worker must
//! cost one chunk, not the job. This crate supplies it, measure-free
//! and std-only:
//!
//! * [`protocol`] — a length-prefixed line protocol over stdin/stdout
//!   (same in-repo text style as the checkpoint and `sts-traj::io`
//!   formats), whose length prefix makes *garbage output* a detectable
//!   [`ProtocolError`] instead of silent corruption;
//! * [`transport`] — the same frames over TCP loopback: a
//!   [`FrameConn`] with socket read deadlines and an injectable
//!   [`NetInjector`] chaos seam (drop/delay/corrupt/duplicate/
//!   disconnect/wedge), the substrate of `sts-core`'s sharded tile
//!   coordinator and the network-chaos suite in `sts-robust`;
//! * [`supervise`] — a fleet of worker subprocesses dealt
//!   [`PairChunk`](sts_runtime::PairChunk)s from a shared queue, with
//!   **hard timeouts via kill** (upgrading the in-process watchdog,
//!   which can only mark), restarts under a budget with
//!   [`DecorrelatedJitter`](sts_runtime::DecorrelatedJitter) backoff,
//!   and **crash attribution**: a chunk that kills a worker is
//!   bisected down to the single poison pair, quarantined as a
//!   [`PoisonPair`] with the worker's
//!   [`WorkerExit`](sts_runtime::WorkerExit).
//!
//! The crate moves chunks and opaque result payloads, never
//! trajectories: `sts-core` builds the STS-specific worker loop and
//! the `ExecMode::Subprocess` job path on top (its preamble frames
//! describe the grid, measure config and corpus; this crate does not
//! interpret them). That keeps `sts-isolate` below `sts-core` in the
//! dependency DAG — the same layering discipline as `sts-runtime`.
//!
//! Everything is instrumented through `sts-obs`: worker spawns,
//! restarts, kills, protocol errors, poisoned pairs, bisection depth
//! and per-worker chunk throughput.

pub mod protocol;
mod supervisor;
pub mod transport;

pub use protocol::{ProtocolError, MAX_FRAME_BYTES};
pub use supervisor::{supervise, IsolateConfig, IsolateRun, PoisonPair, WorkerSpec};
pub use transport::{is_timeout, FrameConn, NetDirection, NetFault, NetInjector};
