//! Framed socket transport with an injectable network-chaos seam.
//!
//! The sharded tile coordinator in `sts-core` talks to its worker
//! fleet over TCP loopback using the exact [`protocol`](crate::protocol)
//! frames the stdio supervisor uses. [`FrameConn`] wraps one such
//! connection and adds the two things a socket needs that a pipe does
//! not:
//!
//! * **read deadlines** — [`FrameConn::set_read_deadline`] arms the
//!   socket's read timeout, so a silent peer surfaces as a typed
//!   timeout ([`is_timeout`]) the coordinator can convert into a lease
//!   expiry instead of blocking a slot forever;
//! * **fault injection** — an optional [`NetInjector`] is consulted
//!   once per frame, per direction, and can drop, delay, corrupt,
//!   duplicate, disconnect or wedge the connection. Production passes
//!   `None` and pays one `Option` check per frame; the network-chaos
//!   suite in `sts-robust` passes a seeded plan and then proves the
//!   sharded matrix is byte-identical anyway.
//!
//! A connection that times out mid-frame is *dead to the caller*: the
//! partial line already consumed from the stream is gone, so the only
//! sound recovery is to discard the connection (which is exactly what
//! the coordinator does — the lease has expired anyway).

use crate::protocol::{read_frame_capped, write_frame, ProtocolError, MAX_FRAME_BYTES};
use std::io::{self, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Which way a frame is crossing the transport, from the wrapping
/// endpoint's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetDirection {
    /// A frame this endpoint is writing to the peer.
    Send,
    /// A frame this endpoint has read from the peer.
    Recv,
}

/// One injected network fault, applied to a single frame (except
/// [`NetFault::Wedge`], which latches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// The frame is silently lost. The sender believes it was
    /// delivered; the receiver never sees it.
    Drop,
    /// The frame is delivered after this extra delay.
    Delay(Duration),
    /// The frame's bytes are destroyed: on send, unframed line noise
    /// goes on the wire instead; on recv, the frame surfaces as a
    /// [`ProtocolError::Garbage`].
    Corrupt,
    /// The frame is delivered twice.
    Duplicate,
    /// The connection is torn down (both directions) and the frame
    /// lost with it.
    Disconnect,
    /// The connection wedges: every later write is swallowed and every
    /// later read times out. Models a peer that is alive but silent.
    Wedge,
}

/// Injectable chaos seam, consulted once per frame with the frame's
/// per-direction index (0-based, counting frames this endpoint has
/// sent or received over the connection's lifetime).
///
/// Returning a fault *is* the injection: the connection always applies
/// what the injector returns, so an implementation that keeps a ledger
/// can record the fault inside `fault_for` and trust the two to match.
pub trait NetInjector: Send + Sync {
    /// The fault to apply to frame `index` in direction `dir`, if any.
    fn fault_for(&self, index: u64, dir: NetDirection) -> Option<NetFault>;
}

/// The unframed bytes a send-side [`NetFault::Corrupt`] puts on the
/// wire — deliberately newline-terminated printable noise, so the
/// peer's reader resynchronizes at the next frame and classifies this
/// one as [`ProtocolError::Garbage`] rather than wedging.
pub const CORRUPT_WIRE_NOISE: &[u8] = b"@@ net fault: line noise @@\n";

/// One framed, deadline-capable, chaos-injectable connection.
pub struct FrameConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    injector: Option<Arc<dyn NetInjector>>,
    frame_cap: usize,
    sent: u64,
    received: u64,
    /// A recv-side duplicated frame waiting to be surfaced again.
    pending: Option<String>,
    wedged: bool,
}

impl FrameConn {
    /// Wraps `stream` with no fault injection (production).
    pub fn new(stream: TcpStream) -> io::Result<FrameConn> {
        FrameConn::with_injector(stream, None)
    }

    /// Wraps `stream`, consulting `injector` on every frame.
    pub fn with_injector(
        stream: TcpStream,
        injector: Option<Arc<dyn NetInjector>>,
    ) -> io::Result<FrameConn> {
        // Frames are request/response turns the peer blocks on; Nagle
        // buys nothing here and costs a delayed-ACK stall per frame.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(FrameConn {
            reader: BufReader::new(stream),
            writer,
            injector,
            frame_cap: MAX_FRAME_BYTES,
            sent: 0,
            received: 0,
            pending: None,
            wedged: false,
        })
    }

    /// Caps inbound frames at `cap` bytes (builder style). The default
    /// is the workspace-wide [`MAX_FRAME_BYTES`]; a streaming ingest
    /// endpoint sets a far smaller cap so one lying length prefix
    /// cannot balloon its memory. Over-cap frames surface as the typed
    /// [`ProtocolError::FrameTooLarge`], after which the connection
    /// must be dropped (the stream is mid-frame).
    pub fn with_frame_cap(mut self, cap: usize) -> FrameConn {
        self.frame_cap = cap;
        self
    }

    /// The inbound frame cap in force.
    pub fn frame_cap(&self) -> usize {
        self.frame_cap
    }

    /// Arms (or disarms, with `None`) the socket read timeout. A recv
    /// that exceeds the deadline fails with a timeout I/O error — see
    /// [`is_timeout`].
    pub fn set_read_deadline(&self, deadline: Option<Duration>) -> io::Result<()> {
        // `set_read_timeout(Some(ZERO))` is an error by contract;
        // treat it as the smallest meaningful deadline.
        let deadline = deadline.map(|d| d.max(Duration::from_millis(1)));
        self.reader.get_ref().set_read_timeout(deadline)
    }

    /// Frames this endpoint has sent (faulted sends count: the caller
    /// believes they were delivered).
    pub fn frames_sent(&self) -> u64 {
        self.sent
    }

    /// Frames this endpoint has received off the wire (dropped-on-recv
    /// frames count: they crossed the wire before being lost).
    pub fn frames_received(&self) -> u64 {
        self.received
    }

    /// Sends one frame, applying any injected fault.
    pub fn send(&mut self, body: &str) -> Result<(), ProtocolError> {
        let index = self.sent;
        self.sent += 1;
        if self.wedged {
            return Ok(());
        }
        match self.fault(index, NetDirection::Send) {
            None => write_frame(&mut self.writer, body)?,
            Some(NetFault::Drop) => {}
            Some(NetFault::Delay(d)) => {
                std::thread::sleep(d);
                write_frame(&mut self.writer, body)?;
            }
            Some(NetFault::Corrupt) => {
                self.writer.write_all(CORRUPT_WIRE_NOISE)?;
                self.writer.flush()?;
            }
            Some(NetFault::Duplicate) => {
                write_frame(&mut self.writer, body)?;
                write_frame(&mut self.writer, body)?;
            }
            Some(NetFault::Disconnect) => {
                let _ = self.writer.shutdown(Shutdown::Both);
                return Err(ProtocolError::Io(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected disconnect",
                )));
            }
            Some(NetFault::Wedge) => self.wedged = true,
        }
        Ok(())
    }

    /// Receives one frame, applying any injected fault. Honors the
    /// read deadline armed by [`set_read_deadline`](Self::set_read_deadline).
    pub fn recv(&mut self) -> Result<String, ProtocolError> {
        if let Some(frame) = self.pending.take() {
            return Ok(frame);
        }
        loop {
            if self.wedged {
                return Err(ProtocolError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "injected wedge",
                )));
            }
            let frame = read_frame_capped(&mut self.reader, self.frame_cap)?;
            let index = self.received;
            self.received += 1;
            match self.fault(index, NetDirection::Recv) {
                None => return Ok(frame),
                // Lost on the wire: keep waiting for the next frame.
                Some(NetFault::Drop) => continue,
                Some(NetFault::Delay(d)) => {
                    std::thread::sleep(d);
                    return Ok(frame);
                }
                Some(NetFault::Corrupt) => {
                    return Err(ProtocolError::Garbage {
                        message: "injected frame corruption".to_string(),
                    })
                }
                Some(NetFault::Duplicate) => {
                    self.pending = Some(frame.clone());
                    return Ok(frame);
                }
                Some(NetFault::Disconnect) => {
                    let _ = self.writer.shutdown(Shutdown::Both);
                    return Err(ProtocolError::Eof);
                }
                Some(NetFault::Wedge) => {
                    self.wedged = true;
                    return Err(ProtocolError::Io(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "injected wedge",
                    )));
                }
            }
        }
    }

    fn fault(&self, index: u64, dir: NetDirection) -> Option<NetFault> {
        self.injector.as_ref()?.fault_for(index, dir)
    }
}

/// Is this error a read-deadline expiry (as opposed to a dead peer or
/// garbage on the wire)? Platforms disagree on the kind a timed-out
/// socket read yields, so both are accepted.
pub fn is_timeout(err: &ProtocolError) -> bool {
    matches!(
        err,
        ProtocolError::Io(e)
            if e.kind() == io::ErrorKind::TimedOut || e.kind() == io::ErrorKind::WouldBlock
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A loopback connection pair.
    fn pair() -> (FrameConn, FrameConn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (
            FrameConn::new(client).unwrap(),
            FrameConn::new(server).unwrap(),
        )
    }

    /// Scripted injector: faults exactly the listed (index, dir) slots.
    struct Script(Vec<(u64, NetDirection, NetFault)>);

    impl NetInjector for Script {
        fn fault_for(&self, index: u64, dir: NetDirection) -> Option<NetFault> {
            self.0
                .iter()
                .find(|(i, d, _)| *i == index && *d == dir)
                .map(|(_, _, f)| *f)
        }
    }

    fn pair_with_client_injector(script: Script) -> (FrameConn, FrameConn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (
            FrameConn::with_injector(client, Some(Arc::new(script))).unwrap(),
            FrameConn::new(server).unwrap(),
        )
    }

    #[test]
    fn clean_frames_round_trip_both_directions() {
        let (mut a, mut b) = pair();
        a.send("chunk 1 0 64").unwrap();
        assert_eq!(b.recv().unwrap(), "chunk 1 0 64");
        b.send("result 1 0").unwrap();
        assert_eq!(a.recv().unwrap(), "result 1 0");
        assert_eq!(a.frames_sent(), 1);
        assert_eq!(a.frames_received(), 1);
    }

    #[test]
    fn read_deadline_surfaces_as_typed_timeout() {
        let (a, mut b) = pair();
        b.set_read_deadline(Some(Duration::from_millis(30)))
            .unwrap();
        let err = b.recv().unwrap_err();
        assert!(is_timeout(&err), "{err}");
        drop(a);
    }

    #[test]
    fn dropped_send_never_reaches_the_peer() {
        let (mut a, mut b) =
            pair_with_client_injector(Script(vec![(0, NetDirection::Send, NetFault::Drop)]));
        a.send("lost").unwrap();
        a.send("kept").unwrap();
        assert_eq!(b.recv().unwrap(), "kept");
    }

    #[test]
    fn corrupt_send_is_garbage_to_the_peer_who_then_resyncs() {
        let (mut a, mut b) =
            pair_with_client_injector(Script(vec![(0, NetDirection::Send, NetFault::Corrupt)]));
        a.send("mangled").unwrap();
        a.send("intact").unwrap();
        assert!(matches!(
            b.recv().unwrap_err(),
            ProtocolError::Garbage { .. }
        ));
        // The noise is newline-terminated: the next frame parses.
        assert_eq!(b.recv().unwrap(), "intact");
    }

    #[test]
    fn duplicate_faults_double_the_frame_on_both_sides() {
        let (mut a, mut b) = pair_with_client_injector(Script(vec![
            (0, NetDirection::Send, NetFault::Duplicate),
            (2, NetDirection::Recv, NetFault::Duplicate),
        ]));
        a.send("twice").unwrap();
        assert_eq!(b.recv().unwrap(), "twice");
        assert_eq!(b.recv().unwrap(), "twice");
        for _ in 0..3 {
            b.send("reply").unwrap();
        }
        assert_eq!(a.recv().unwrap(), "reply"); // recv index 0
        assert_eq!(a.recv().unwrap(), "reply"); // recv index 1
        assert_eq!(a.recv().unwrap(), "reply"); // recv index 2, duplicated
        assert_eq!(a.recv().unwrap(), "reply"); // the duplicate
        assert_eq!(a.frames_received(), 3, "wire saw three frames");
    }

    #[test]
    fn recv_drop_skips_to_the_next_frame() {
        let (mut a, mut b) =
            pair_with_client_injector(Script(vec![(0, NetDirection::Recv, NetFault::Drop)]));
        b.send("eaten").unwrap();
        b.send("delivered").unwrap();
        assert_eq!(a.recv().unwrap(), "delivered");
    }

    #[test]
    fn disconnect_tears_the_connection_down() {
        let (mut a, mut b) =
            pair_with_client_injector(Script(vec![(0, NetDirection::Send, NetFault::Disconnect)]));
        assert!(a.send("doomed").is_err());
        assert!(matches!(b.recv().unwrap_err(), ProtocolError::Eof));
    }

    #[test]
    fn wedge_latches_swallowing_writes_and_timing_out_reads() {
        let (mut a, mut b) =
            pair_with_client_injector(Script(vec![(1, NetDirection::Send, NetFault::Wedge)]));
        a.send("before").unwrap();
        a.send("wedges here").unwrap();
        a.send("swallowed").unwrap();
        assert!(is_timeout(&a.recv().unwrap_err()));
        b.set_read_deadline(Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(b.recv().unwrap(), "before");
        assert!(is_timeout(&b.recv().unwrap_err()), "nothing else arrives");
    }
}
