//! The subprocess fleet supervisor.
//!
//! One supervisor thread per worker slot owns one worker subprocess at
//! a time. Slots deal [`PairChunk`]s from a shared queue (the same
//! discipline as `sts-runtime::pool`), feed them to the worker over
//! the framed stdio protocol and stream valid results back to the
//! caller's thread. Everything that can go wrong with a *process* is
//! handled here:
//!
//! * a chunk that exceeds the **hard timeout** gets its worker killed
//!   (upgrading the in-process watchdog, which can only mark);
//! * a worker that **dies** (abort, OOM kill, stack overflow) or emits
//!   **garbage** is discarded and replaced, with
//!   [`DecorrelatedJitter`] backoff, under a global **restart
//!   budget** — a poison-dense workload degrades to a stopped job,
//!   never a crash loop;
//! * every death is **attributed**: the killing chunk is bisected —
//!   halves requeued at the front — until the single poison pair is
//!   isolated and quarantined as a [`PoisonPair`] carrying the
//!   worker's [`WorkerExit`]. Which pairs end up quarantined depends
//!   only on which pairs kill workers, so seeded chaos runs replay the
//!   same poison set regardless of thread scheduling.

use crate::protocol::{read_frame, write_frame, ProtocolError};
use std::collections::VecDeque;
use std::io::BufReader;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};
use sts_obs::{static_counter, static_histogram, trace};
use sts_runtime::{Budget, CancelToken, DecorrelatedJitter, PairChunk, StopReason, WorkerExit};

/// Poison-tolerant lock (same rationale as the in-process pool: a
/// panicking slot thread must not cascade into losing the whole run).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How to launch one worker subprocess.
#[derive(Debug, Clone, Default)]
pub struct WorkerSpec {
    /// Path to the worker executable.
    pub program: PathBuf,
    /// Arguments passed to every worker.
    pub args: Vec<String>,
    /// Extra environment variables set for every worker.
    pub envs: Vec<(String, String)>,
}

/// Supervisor configuration.
#[derive(Debug, Clone)]
pub struct IsolateConfig {
    /// The worker executable to run.
    pub worker: WorkerSpec,
    /// Worker subprocesses; `0` selects automatically via
    /// [`sts_runtime::thread_count`] capped at the chunk count.
    pub workers: usize,
    /// Hard per-chunk timeout: a worker that has not answered a chunk
    /// within this long is killed and the chunk attributed. Must
    /// comfortably exceed the honest worst-case chunk time.
    pub hard_timeout: Duration,
    /// How long a fresh worker may take to consume the preamble and
    /// answer `ready`.
    pub ready_timeout: Duration,
    /// Worker respawns allowed across the whole run (the initial fleet
    /// is free). Exhausting it stops the job with
    /// [`StopReason::WorkerRestartsExhausted`].
    pub restart_budget: usize,
    /// Deaths a *single-pair* chunk may cause before the pair is
    /// quarantined as poison. `1` (the default) quarantines on first
    /// isolated death — worker deaths are expensive.
    pub poison_attempts: u32,
    /// Minimum backoff before respawning a dead worker.
    pub backoff_base: Duration,
    /// Backoff cap.
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter.
    pub backoff_seed: u64,
    /// Work/wall-clock budget, checked at every chunk boundary.
    pub budget: Budget,
    /// Cooperative cancellation, checked at every chunk boundary.
    pub cancel: CancelToken,
}

impl Default for IsolateConfig {
    fn default() -> Self {
        IsolateConfig {
            worker: WorkerSpec::default(),
            workers: 0,
            hard_timeout: Duration::from_secs(30),
            ready_timeout: Duration::from_secs(10),
            restart_budget: 256,
            poison_attempts: 1,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(100),
            backoff_seed: 0x1507_A7E5, // "ISOLATES"
            budget: Budget::default(),
            cancel: CancelToken::new(),
        }
    }
}

/// One quarantined pair: the crash attribution verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoisonPair {
    /// Linear pair index (row-major, as in [`sts_runtime::PairSpace`]).
    pub lin: usize,
    /// How the worker holding the isolated pair died.
    pub exit: WorkerExit,
    /// Worker deaths this pair caused *while isolated* (larger chunks
    /// it killed on the way down are not counted).
    pub attempts: u32,
}

/// What one supervised subprocess run did.
#[derive(Debug, Default)]
pub struct IsolateRun {
    /// Pairs whose chunks completed with a valid result frame.
    pub pairs_completed: usize,
    /// Quarantined poison pairs, ascending by linear index.
    pub poisoned: Vec<PoisonPair>,
    /// Pairs never resolved because the run stopped early.
    pub pairs_skipped: usize,
    /// Why the run stopped early, if it did.
    pub stop: Option<StopReason>,
    /// Worker processes spawned (initial fleet plus restarts).
    pub workers_spawned: usize,
    /// Workers respawned after a death.
    pub worker_restarts: usize,
    /// Workers killed by the supervisor (hard timeout or garbage).
    pub worker_kills: usize,
    /// Workers that refused the job handshake with a typed `reject`
    /// frame (protocol version or job fingerprint mismatch).
    pub workers_rejected: usize,
    /// Protocol violations observed.
    pub protocol_errors: usize,
    /// Deepest bisection reached while attributing crashes.
    pub max_bisect_depth: usize,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
}

/// A queued unit of work: a chunk plus its attribution state.
struct Item {
    chunk: PairChunk,
    /// Bisection depth (0 for an originally dealt chunk).
    depth: usize,
    /// Worker deaths this exact chunk caused (only tracked once the
    /// chunk is a single pair).
    attempts: u32,
}

/// Shared supervisor state.
struct Shared {
    queue: Mutex<VecDeque<Item>>,
    stop: Mutex<Option<StopReason>>,
    poisoned: Mutex<Vec<PoisonPair>>,
    pairs_done: AtomicUsize,
    pairs_skipped: AtomicUsize,
    restarts_left: Mutex<usize>,
    workers_spawned: AtomicUsize,
    worker_restarts: AtomicUsize,
    worker_kills: AtomicUsize,
    workers_rejected: AtomicUsize,
    protocol_errors: AtomicUsize,
    max_depth: AtomicUsize,
    req_ids: AtomicU64,
    span: u64,
}

impl Shared {
    /// Records an early stop (first reason wins) and drains the queue:
    /// everything still queued is skipped, not lost silently.
    fn stop_and_drain(&self, reason: StopReason) {
        lock_unpoisoned(&self.stop).get_or_insert(reason);
        let mut queue = lock_unpoisoned(&self.queue);
        while let Some(item) = queue.pop_front() {
            self.pairs_skipped
                .fetch_add(item.chunk.len, Ordering::Relaxed);
        }
    }

    fn note_depth(&self, depth: usize) {
        self.max_depth.fetch_max(depth, Ordering::Relaxed);
        static_histogram!("isolate.bisect.depth").record(depth as u64);
    }
}

/// A live worker subprocess: the child, its stdin, and a dedicated
/// reader thread that parses stdout frames into a channel (so the
/// supervisor can wait on results *with a timeout*).
struct Worker {
    child: Child,
    stdin: ChildStdin,
    frames: mpsc::Receiver<Result<String, ProtocolError>>,
}

impl Worker {
    /// Spawns a worker, feeds it the preamble and waits for `ready`.
    fn spawn(cfg: &IsolateConfig, preamble: &[String]) -> Result<Worker, WorkerExit> {
        let mut cmd = Command::new(&cfg.worker.program);
        cmd.args(&cfg.worker.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        for (k, v) in &cfg.worker.envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().map_err(|_| WorkerExit::Code(-1))?;
        let stdin = child.stdin.take().expect("stdin piped");
        let stdout = child.stdout.take().expect("stdout piped");
        let (tx, frames) = mpsc::channel();
        // The reader is deliberately detached, never joined: a killed
        // worker can leave an orphaned grandchild holding the stdout
        // pipe open (so EOF never arrives), and joining would wedge
        // the supervisor on exactly the fault it is supposed to
        // contain. A blocked reader costs one parked thread until the
        // pipe finally closes; its sends fail silently once the
        // receiver is gone.
        std::thread::spawn(move || {
            let mut r = BufReader::new(stdout);
            loop {
                let frame = read_frame(&mut r);
                let done = frame.is_err();
                if tx.send(frame).is_err() || done {
                    return;
                }
            }
        });
        let mut w = Worker {
            child,
            stdin,
            frames,
        };
        // ^ `stdin` moved into the struct; keep a reborrow for writes.
        let stdin = &mut w.stdin;
        for frame in preamble {
            if write_frame(stdin, frame).is_err() {
                return Err(w.reap());
            }
        }
        if write_frame(stdin, "begin").is_err() {
            return Err(w.reap());
        }
        match w.frames.recv_timeout(cfg.ready_timeout) {
            Ok(Ok(body)) if body == "ready" => Ok(w),
            // A typed handshake refusal (`reject version …` /
            // `reject fingerprint …`): the worker binary cannot serve
            // this job, and a respawn of the same binary would refuse
            // again — surfaced as its own exit so the slot stops
            // instead of burning the restart budget.
            Ok(Ok(body)) if body.starts_with("reject ") => {
                w.kill();
                Err(WorkerExit::Rejected)
            }
            Ok(Ok(_)) | Ok(Err(ProtocolError::Garbage { .. })) => {
                w.kill();
                Err(WorkerExit::Protocol)
            }
            Ok(Err(_)) => Err(w.reap()),
            Err(_) => {
                w.kill();
                Err(WorkerExit::HardTimeout)
            }
        }
    }

    /// Sends one chunk and waits for its result within `timeout`.
    /// On success returns the result payload (`<n> <records…>`).
    fn run_chunk(&mut self, req_id: u64, chunk: &PairChunk, timeout: Duration) -> ChunkVerdict {
        let frame = format!("chunk {req_id} {} {}", chunk.start, chunk.len);
        if write_frame(&mut self.stdin, &frame).is_err() {
            return ChunkVerdict::Died(self.reap());
        }
        match self.frames.recv_timeout(timeout) {
            Ok(Ok(body)) => {
                let mut fields = body.splitn(3, ' ');
                let keyword = fields.next().unwrap_or("");
                let id = fields.next().and_then(|s| s.parse::<u64>().ok());
                if keyword == "result" && id == Some(req_id) {
                    ChunkVerdict::Done(fields.next().unwrap_or("").to_string())
                } else {
                    self.kill();
                    ChunkVerdict::Garbage
                }
            }
            Ok(Err(ProtocolError::Garbage { .. })) => {
                self.kill();
                ChunkVerdict::Garbage
            }
            Ok(Err(_)) => ChunkVerdict::Died(self.reap()),
            Err(_) => {
                self.kill();
                ChunkVerdict::Died(WorkerExit::HardTimeout)
            }
        }
    }

    /// Kills the child outright (SIGKILL on Unix) and reaps it.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Waits for an already-dead (or dying) child and classifies the
    /// exit. Bounded: a child that somehow lingers after breaking its
    /// pipes is killed rather than blocking the slot forever.
    fn reap(&mut self) -> WorkerExit {
        for _ in 0..200 {
            match self.child.try_wait() {
                Ok(Some(status)) => return WorkerExit::from_status(status),
                Ok(None) => std::thread::sleep(Duration::from_millis(10)),
                Err(_) => break,
            }
        }
        let _ = self.child.kill();
        match self.child.wait() {
            Ok(status) => WorkerExit::from_status(status),
            Err(_) => WorkerExit::Code(-1),
        }
    }

    /// Asks the worker to exit cleanly; falls back to kill.
    fn shutdown(mut self) {
        if write_frame(&mut self.stdin, "shutdown").is_ok() {
            // Give it a beat to exit on its own; don't block the slot.
            for _ in 0..50 {
                if matches!(self.child.try_wait(), Ok(Some(_))) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        self.kill();
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        // Never leak a live subprocess, whatever path dropped us.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Outcome of handing one chunk to a worker.
enum ChunkVerdict {
    /// Valid result; payload is `<n> <records…>`.
    Done(String),
    /// The worker process died (or was killed for a hard timeout,
    /// carrying [`WorkerExit::HardTimeout`]).
    Died(WorkerExit),
    /// The worker answered with bytes that are not a valid result
    /// frame; it was killed.
    Garbage,
}

/// Runs `chunks` across a supervised fleet of worker subprocesses.
///
/// Every worker is started with the same `preamble` frames (the job
/// description — this crate does not interpret them) followed by
/// `begin`, and must answer `ready`. Valid chunk results are handed —
/// in completion order, on the calling thread — to
/// `on_complete(chunk, payload)` where `payload` is the body after
/// `result <req_id> ` (i.e. `<n> <records…>`).
///
/// The call returns when every chunk has completed, been attributed to
/// quarantined poison pairs, or been skipped by an early stop.
pub fn supervise<S>(
    chunks: &[PairChunk],
    cfg: &IsolateConfig,
    preamble: &[String],
    mut on_complete: S,
) -> IsolateRun
where
    S: FnMut(&PairChunk, &str),
{
    let started = Instant::now();
    let run_span = trace::span("isolate.run");
    let slots = if cfg.workers > 0 {
        cfg.workers.min(chunks.len().max(1))
    } else {
        sts_runtime::thread_count(chunks.len())
    };
    let shared = Shared {
        queue: Mutex::new(
            chunks
                .iter()
                .map(|&chunk| Item {
                    chunk,
                    depth: 0,
                    attempts: 0,
                })
                .collect(),
        ),
        stop: Mutex::new(None),
        poisoned: Mutex::new(Vec::new()),
        pairs_done: AtomicUsize::new(0),
        pairs_skipped: AtomicUsize::new(0),
        restarts_left: Mutex::new(cfg.restart_budget),
        workers_spawned: AtomicUsize::new(0),
        worker_restarts: AtomicUsize::new(0),
        worker_kills: AtomicUsize::new(0),
        workers_rejected: AtomicUsize::new(0),
        protocol_errors: AtomicUsize::new(0),
        max_depth: AtomicUsize::new(0),
        req_ids: AtomicU64::new(0),
        span: run_span.id(),
    };

    let (tx, rx) = mpsc::channel::<(PairChunk, String)>();
    std::thread::scope(|scope| {
        for slot in 0..slots {
            let tx = tx.clone();
            let shared = &shared;
            scope.spawn(move || slot_loop(slot, shared, cfg, preamble, tx));
        }
        drop(tx);
        for (chunk, payload) in rx {
            on_complete(&chunk, &payload);
        }
    });

    let mut poisoned = shared
        .poisoned
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    poisoned.sort_unstable_by_key(|p| p.lin);
    IsolateRun {
        pairs_completed: shared.pairs_done.into_inner(),
        poisoned,
        pairs_skipped: shared.pairs_skipped.into_inner(),
        stop: shared
            .stop
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner),
        workers_spawned: shared.workers_spawned.into_inner(),
        worker_restarts: shared.worker_restarts.into_inner(),
        worker_kills: shared.worker_kills.into_inner(),
        workers_rejected: shared.workers_rejected.into_inner(),
        protocol_errors: shared.protocol_errors.into_inner(),
        max_bisect_depth: shared.max_depth.into_inner(),
        elapsed: started.elapsed(),
    }
}

fn slot_loop(
    slot: usize,
    shared: &Shared,
    cfg: &IsolateConfig,
    preamble: &[String],
    tx: mpsc::Sender<(PairChunk, String)>,
) {
    let mut backoff = DecorrelatedJitter::new(
        cfg.backoff_base,
        cfg.backoff_cap,
        cfg.backoff_seed ^ (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let mut worker: Option<Worker> = None;
    let mut ever_spawned = false;
    let mut chunks_served: u64 = 0;

    loop {
        // Cooperative stop check, once per chunk boundary.
        let reason = if cfg.cancel.is_cancelled() {
            Some(StopReason::Cancelled)
        } else {
            cfg.budget.check(shared.pairs_done.load(Ordering::Relaxed))
        };
        if let Some(reason) = reason {
            shared.stop_and_drain(reason);
            break;
        }
        if lock_unpoisoned(&shared.stop).is_some() {
            break;
        }
        let Some(item) = lock_unpoisoned(&shared.queue).pop_front() else {
            break;
        };

        // Ensure a live worker. Respawns (everything after this slot's
        // first spawn) consume the shared restart budget.
        let w = match &mut worker {
            Some(w) => w,
            None => {
                match Worker::spawn(cfg, preamble) {
                    Ok(w) => {
                        shared.workers_spawned.fetch_add(1, Ordering::Relaxed);
                        static_counter!("isolate.workers.spawned").incr();
                        if ever_spawned {
                            // A replacement for a dead worker; the
                            // restart budget was charged at death.
                            shared.worker_restarts.fetch_add(1, Ordering::Relaxed);
                            static_counter!("isolate.workers.restarts").incr();
                        }
                        ever_spawned = true;
                        worker.insert(w)
                    }
                    Err(exit) => {
                        // Spawn itself failed. Requeue the item
                        // untouched either way; what happens next
                        // depends on whether the failure is permanent.
                        lock_unpoisoned(&shared.queue).push_front(item);
                        if exit == WorkerExit::Rejected {
                            // Handshake refusal: deterministic for
                            // these binaries, so retrying cannot help.
                            shared.workers_rejected.fetch_add(1, Ordering::Relaxed);
                            static_counter!("isolate.workers.rejected").incr();
                            shared.stop_and_drain(StopReason::WorkerRejected);
                            break;
                        }
                        // Transient (missing binary, fork pressure,
                        // died in preamble): charge the budget, back
                        // off, try again.
                        if !charge_restart(shared) {
                            break;
                        }
                        std::thread::sleep(backoff.next_delay());
                        continue;
                    }
                }
            }
        };

        let req_id = shared.req_ids.fetch_add(1, Ordering::Relaxed);
        let _span = trace::span_with_parent("isolate.chunk", shared.span);
        match w.run_chunk(req_id, &item.chunk, cfg.hard_timeout) {
            ChunkVerdict::Done(payload) => {
                chunks_served += 1;
                shared
                    .pairs_done
                    .fetch_add(item.chunk.len, Ordering::Relaxed);
                // Collector holds the receiver for the whole scope; a
                // send failure means the scope is unwinding already.
                let _ = tx.send((item.chunk, payload));
            }
            verdict @ (ChunkVerdict::Died(_) | ChunkVerdict::Garbage) => {
                let exit = match verdict {
                    ChunkVerdict::Garbage => {
                        shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        static_counter!("isolate.protocol.errors").incr();
                        WorkerExit::Protocol
                    }
                    ChunkVerdict::Died(exit) => {
                        if exit == WorkerExit::HardTimeout {
                            shared.worker_kills.fetch_add(1, Ordering::Relaxed);
                            static_counter!("isolate.workers.kills").incr();
                        }
                        exit
                    }
                    ChunkVerdict::Done(_) => unreachable!(),
                };
                // The worker is gone either way; retire the slot's
                // handle and attribute the chunk.
                if let Some(w) = worker.take() {
                    drop(w); // kills if still alive, joins the reader
                }
                attribute_death(shared, cfg, item, exit);
                if !charge_restart(shared) {
                    break;
                }
                std::thread::sleep(backoff.next_delay());
            }
        }
    }

    static_histogram!("isolate.worker.chunks").record(chunks_served);
    if let Some(w) = worker.take() {
        w.shutdown();
    }
}

/// Consumes one unit of the restart budget; on exhaustion records the
/// stop and returns `false` (the slot should exit).
fn charge_restart(shared: &Shared) -> bool {
    let mut left = lock_unpoisoned(&shared.restarts_left);
    if *left == 0 {
        drop(left);
        shared.stop_and_drain(StopReason::WorkerRestartsExhausted);
        return false;
    }
    *left -= 1;
    true
}

/// Crash attribution: a multi-pair chunk is bisected (halves requeued
/// at the front, so attribution finishes before new work starts); an
/// isolated single pair is quarantined once its deaths reach the
/// poison threshold.
fn attribute_death(shared: &Shared, cfg: &IsolateConfig, item: Item, exit: WorkerExit) {
    if item.chunk.len <= 1 {
        let attempts = item.attempts + 1;
        if attempts >= cfg.poison_attempts {
            shared.note_depth(item.depth);
            static_counter!("isolate.pairs.poisoned").incr();
            lock_unpoisoned(&shared.poisoned).push(PoisonPair {
                lin: item.chunk.start,
                exit,
                attempts,
            });
        } else {
            lock_unpoisoned(&shared.queue).push_front(Item { attempts, ..item });
        }
        return;
    }
    let left_len = item.chunk.len / 2;
    let depth = item.depth + 1;
    shared.note_depth(depth);
    let halves = [
        PairChunk {
            id: item.chunk.id,
            start: item.chunk.start,
            len: left_len,
        },
        PairChunk {
            id: item.chunk.id,
            start: item.chunk.start + left_len,
            len: item.chunk.len - left_len,
        },
    ];
    let mut queue = lock_unpoisoned(&shared.queue);
    // Front-push right half first so the left half runs first.
    for chunk in halves.into_iter().rev() {
        queue.push_front(Item {
            chunk,
            depth,
            attempts: 0,
        });
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use sts_runtime::PairSpace;

    /// A shell-script worker implementing the protocol: answers every
    /// chunk with `result <id> <n>` plus `<lin> s <lin*2>` records.
    /// `hook` runs inside the per-chunk loop with `$start`/`$n`/`$id`
    /// in scope, before the result is emitted — the fault injection
    /// point for tests.
    fn sh_worker(hook: &str) -> WorkerSpec {
        let script = format!(
            r#"
while read -r len body; do
  set -- $body
  case "$1" in
    begin) printf '5 ready\n' ;;
    chunk)
      id=$2; start=$3; n=$4
      {hook}
      out="result $id $n"
      i=0
      while [ $i -lt $n ]; do
        lin=$((start + i))
        out="$out $lin s $((lin * 2))"
        i=$((i + 1))
      done
      printf '%s %s\n' "${{#out}}" "$out"
      ;;
    shutdown) exit 0 ;;
  esac
done
"#
        );
        WorkerSpec {
            program: PathBuf::from("/bin/sh"),
            args: vec!["-c".into(), script],
            envs: Vec::new(),
        }
    }

    fn config(worker: WorkerSpec) -> IsolateConfig {
        IsolateConfig {
            worker,
            workers: 2,
            hard_timeout: Duration::from_secs(5),
            ready_timeout: Duration::from_secs(5),
            restart_budget: 64,
            backoff_base: Duration::from_micros(100),
            backoff_cap: Duration::from_millis(2),
            ..IsolateConfig::default()
        }
    }

    fn run_matrix(
        rows: usize,
        cols: usize,
        chunk: usize,
        cfg: &IsolateConfig,
    ) -> (Vec<Option<u64>>, IsolateRun) {
        let space = PairSpace::new(rows, cols);
        let chunks: Vec<PairChunk> = space.chunks(chunk).collect();
        let mut cells: Vec<Option<u64>> = vec![None; space.len()];
        let run = supervise(&chunks, cfg, &[], |_chunk, payload| {
            let mut fields = payload.split_whitespace();
            let n: usize = fields.next().unwrap().parse().unwrap();
            for _ in 0..n {
                let lin: usize = fields.next().unwrap().parse().unwrap();
                assert_eq!(fields.next(), Some("s"));
                let v: u64 = fields.next().unwrap().parse().unwrap();
                cells[lin] = Some(v);
            }
        });
        (cells, run)
    }

    #[test]
    fn clean_fleet_completes_every_chunk() {
        let cfg = config(sh_worker(""));
        let (cells, run) = run_matrix(6, 7, 5, &cfg);
        assert_eq!(run.stop, None);
        assert_eq!(run.pairs_completed, 42);
        assert!(run.poisoned.is_empty());
        assert_eq!(run.worker_restarts, 0);
        for (lin, v) in cells.iter().enumerate() {
            assert_eq!(*v, Some(lin as u64 * 2), "cell {lin}");
        }
    }

    #[test]
    fn aborting_pair_is_bisected_to_poison_and_the_rest_completes() {
        // Pair 11 kills its worker (exit 13 stands in for a crash).
        let cfg = config(sh_worker(
            "if [ $start -le 11 ] && [ $((start + n)) -gt 11 ]; then exit 13; fi",
        ));
        let (cells, run) = run_matrix(4, 8, 8, &cfg);
        assert_eq!(run.stop, None, "{run:?}");
        assert_eq!(run.poisoned.len(), 1, "{:?}", run.poisoned);
        assert_eq!(run.poisoned[0].lin, 11);
        assert_eq!(run.poisoned[0].exit, WorkerExit::Code(13));
        assert_eq!(run.pairs_completed, 31);
        assert!(run.worker_restarts > 0);
        assert!(run.max_bisect_depth >= 3, "depth {}", run.max_bisect_depth);
        for (lin, v) in cells.iter().enumerate() {
            if lin == 11 {
                assert_eq!(*v, None);
            } else {
                assert_eq!(*v, Some(lin as u64 * 2), "cell {lin}");
            }
        }
    }

    #[test]
    fn wedged_pair_is_killed_and_attributed_as_hard_timeout() {
        let mut cfg = config(sh_worker(
            "if [ $start -le 3 ] && [ $((start + n)) -gt 3 ]; then sleep 600; fi",
        ));
        cfg.hard_timeout = Duration::from_millis(250);
        let (cells, run) = run_matrix(2, 4, 4, &cfg);
        assert_eq!(run.stop, None, "{run:?}");
        assert_eq!(run.poisoned.len(), 1, "{:?}", run.poisoned);
        assert_eq!(run.poisoned[0].lin, 3);
        assert_eq!(run.poisoned[0].exit, WorkerExit::HardTimeout);
        assert!(run.worker_kills > 0);
        assert_eq!(cells[3], None);
        assert_eq!(run.pairs_completed, 7);
    }

    #[test]
    fn garbage_output_is_attributed_as_protocol_poison() {
        let cfg = config(sh_worker(
            "if [ $start -le 5 ] && [ $((start + n)) -gt 5 ]; then printf 'blorp blorp blorp\\n'; continue; fi",
        ));
        let (cells, run) = run_matrix(3, 3, 4, &cfg);
        assert_eq!(run.stop, None, "{run:?}");
        assert_eq!(run.poisoned.len(), 1, "{:?}", run.poisoned);
        assert_eq!(run.poisoned[0].lin, 5);
        assert_eq!(run.poisoned[0].exit, WorkerExit::Protocol);
        assert!(run.protocol_errors > 0);
        assert_eq!(cells[5], None);
        assert_eq!(run.pairs_completed, 8);
    }

    #[test]
    fn restart_budget_exhaustion_stops_instead_of_crash_looping() {
        // Every chunk kills the worker: with a tiny budget the run
        // must stop with WorkerRestartsExhausted and skip the rest.
        let mut cfg = config(sh_worker("exit 7"));
        cfg.restart_budget = 3;
        cfg.workers = 1;
        let (_cells, run) = run_matrix(4, 4, 2, &cfg);
        assert_eq!(run.stop, Some(StopReason::WorkerRestartsExhausted));
        assert_eq!(run.pairs_completed, 0);
        assert!(run.pairs_skipped > 0, "{run:?}");
    }

    #[test]
    fn missing_worker_binary_exhausts_the_budget_cleanly() {
        let mut cfg = config(WorkerSpec {
            program: PathBuf::from("/nonexistent/sts-worker"),
            ..WorkerSpec::default()
        });
        cfg.restart_budget = 2;
        cfg.workers = 1;
        let (_cells, run) = run_matrix(2, 2, 2, &cfg);
        assert_eq!(run.stop, Some(StopReason::WorkerRestartsExhausted));
        assert_eq!(run.pairs_completed, 0);
        assert_eq!(run.pairs_skipped, 4);
    }

    #[test]
    fn handshake_rejection_stops_typed_without_burning_restarts() {
        // The worker answers `begin` with a typed reject frame — a
        // version-skewed binary. The run must stop as WorkerRejected
        // on the first refusal, not crash-loop through the budget.
        let script = r#"
while read -r len body; do
  set -- $body
  case "$1" in
    begin) printf '18 reject version 1 2\n'; exit 0 ;;
  esac
done
"#;
        let mut cfg = config(WorkerSpec {
            program: PathBuf::from("/bin/sh"),
            args: vec!["-c".into(), script.to_string()],
            envs: Vec::new(),
        });
        cfg.workers = 1;
        let (_cells, run) = run_matrix(2, 2, 2, &cfg);
        assert_eq!(run.stop, Some(StopReason::WorkerRejected));
        assert_eq!(run.workers_rejected, 1);
        assert_eq!(run.worker_restarts, 0, "rejection must not retry");
        assert_eq!(run.pairs_completed, 0);
        assert_eq!(run.pairs_skipped, 4);
    }

    #[test]
    fn cancellation_skips_queued_chunks() {
        let cfg = config(sh_worker(""));
        cfg.cancel.cancel();
        let (_cells, run) = run_matrix(4, 4, 2, &cfg);
        assert_eq!(run.stop, Some(StopReason::Cancelled));
        assert_eq!(run.pairs_completed, 0);
        assert_eq!(run.pairs_skipped, 16);
    }

    #[test]
    fn poison_set_is_deterministic_across_repeat_runs() {
        let hook = "case $start in 2|9) if [ $n -le 1 ]; then exit 5; fi ;; esac; \
                    if [ $start -le 2 ] && [ $((start + n)) -gt 2 ]; then exit 5; fi; \
                    if [ $start -le 9 ] && [ $((start + n)) -gt 9 ]; then exit 5; fi";
        let mut sets = Vec::new();
        for _ in 0..3 {
            let cfg = config(sh_worker(hook));
            let (_cells, run) = run_matrix(4, 4, 16, &cfg);
            let lins: Vec<usize> = run.poisoned.iter().map(|p| p.lin).collect();
            assert_eq!(lins, vec![2, 9], "{:?}", run.poisoned);
            sets.push(
                run.poisoned
                    .iter()
                    .map(|p| (p.lin, p.exit))
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(sets[0], sets[1]);
        assert_eq!(sets[1], sets[2]);
    }
}
