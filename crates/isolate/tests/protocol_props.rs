//! The frame codec under a byte-level adversary.
//!
//! Property tests (via the in-repo `sts_rng::check` harness) for the
//! length-prefixed frame protocol: arbitrary bodies round-trip, the
//! 64 MiB cap is enforced exactly at the boundary, truncated wire
//! bytes never parse as a frame, and a reader on a real loopback
//! socket resynchronizes after garbage-prefix noise — the property the
//! supervisor's garbage-worker containment and the sharded
//! coordinator's corrupt-frame accounting both rest on.

use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use sts_isolate::protocol::{read_frame, write_frame, ProtocolError};
use sts_isolate::MAX_FRAME_BYTES;
use sts_rng::check::{map, vec_of, Checker, Strategy};
use sts_rng::{prop_assert, prop_assert_eq};

/// Frame bodies: printable characters including spaces (the in-repo
/// record separator), never a newline.
const BODY_ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789 .:-+/";

/// Garbage-prefix noise: printable, newline-free, and digit-free, so a
/// noise line can never accidentally form a valid length prefix.
const NOISE_ALPHABET: &[u8] = b"abcxyz!@#$%^&*() ";

fn text(
    alphabet: &'static [u8],
    len: std::ops::RangeInclusive<usize>,
) -> impl Strategy<Value = String> {
    map(vec_of(0usize..alphabet.len(), len), move |idxs| {
        idxs.iter()
            .map(|&i| alphabet[i] as char)
            .collect::<String>()
    })
}

fn body_strategy() -> impl Strategy<Value = String> {
    text(BODY_ALPHABET, 0..=160)
}

#[test]
fn every_body_round_trips_exactly() {
    Checker::new()
        .cases(128)
        .seed(0xF7A3_0001)
        .run(body_strategy(), |body| {
            let mut wire = Vec::new();
            write_frame(&mut wire, &body).map_err(|e| e.to_string())?;
            let got = read_frame(&mut wire.as_slice()).map_err(|e| e.to_string())?;
            prop_assert_eq!(got, body);
            Ok(())
        });
}

#[test]
fn cap_boundary_round_trips_and_one_past_is_garbage() {
    // Exactly at the cap: a legal frame, read back intact.
    let body = "a".repeat(MAX_FRAME_BYTES);
    let mut wire = Vec::with_capacity(MAX_FRAME_BYTES + 16);
    write_frame(&mut wire, &body).unwrap();
    let got = read_frame(&mut wire.as_slice()).unwrap();
    assert_eq!(got.len(), MAX_FRAME_BYTES);
    assert_eq!(got, body);

    // One byte past the cap: rejected by the declared-length guard
    // (the untrusted-count defense — a liar's length must not drive
    // allocation or acceptance).
    let mut over = format!("{} ", MAX_FRAME_BYTES + 1).into_bytes();
    over.resize(over.len() + MAX_FRAME_BYTES + 1, b'b');
    over.push(b'\n');
    let err = read_frame(&mut over.as_slice()).unwrap_err();
    assert!(
        matches!(
            &err,
            ProtocolError::FrameTooLarge { declared, cap }
                if *declared == MAX_FRAME_BYTES + 1 && *cap == MAX_FRAME_BYTES
        ),
        "{err}"
    );
}

#[test]
fn truncated_frames_never_parse() {
    Checker::new().cases(128).seed(0xF7A3_0002).run(
        (body_strategy(), 0usize..100_000),
        |(body, cut)| {
            let mut wire = Vec::new();
            write_frame(&mut wire, &body).map_err(|e| e.to_string())?;
            // Truncate strictly before the end: at least the newline
            // terminator is missing.
            let cut = cut % wire.len();
            let result = read_frame(&mut &wire[..cut]);
            prop_assert!(
                result.is_err(),
                "frame truncated at {cut}/{} bytes parsed as {result:?}",
                wire.len()
            );
            Ok(())
        },
    );
}

#[test]
fn reader_resyncs_after_garbage_prefix_over_a_loopback_socket() {
    Checker::new().cases(24).seed(0xF7A3_0003).run(
        (vec_of(text(NOISE_ALPHABET, 0..=40), 1..=5), body_strategy()),
        |(noise_lines, body)| {
            let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
            let addr = listener.local_addr().map_err(|e| e.to_string())?;
            let writer = std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).expect("connect");
                for line in &noise_lines {
                    s.write_all(line.as_bytes()).expect("noise");
                    s.write_all(b"\n").expect("noise");
                }
                write_frame(&mut s, &body).expect("frame");
                (noise_lines, body)
            });
            let (conn, _) = listener.accept().map_err(|e| e.to_string())?;
            let mut reader = BufReader::new(conn);
            let mut garbage_seen = 0usize;
            let frame = loop {
                match read_frame(&mut reader) {
                    Ok(frame) => break frame,
                    // Newline-terminated noise: one typed error per
                    // line, then the reader is aligned again.
                    Err(ProtocolError::Garbage { .. }) => garbage_seen += 1,
                    Err(e) => return Err(format!("unexpected error: {e}")),
                }
            };
            let (noise_lines, body) = writer.join().expect("writer thread");
            prop_assert_eq!(frame, body);
            prop_assert_eq!(garbage_seen, noise_lines.len());
            Ok(())
        },
    );
}
