//! Evaluation metrics (paper §VI-B).

/// The rank of each query's true match given a similarity matrix:
/// `ranks[i]` is the 1-based position of candidate `i` when the
/// candidates are sorted by decreasing similarity to query `i` (the
/// ground truth is the diagonal, as in the §VI-C construction).
///
/// Ties are scored pessimistically (the true match ranks below every
/// candidate with an equal score): a measure that collapses everything
/// to the same value must not look accurate.
pub fn ranks_of_true_matches(similarity: &[Vec<f64>]) -> Vec<usize> {
    similarity
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let own = row[i];
            1 + row
                .iter()
                .enumerate()
                .filter(|&(j, &s)| j != i && s >= own)
                .count()
        })
        .collect()
}

/// Precision (Eq. 11): the fraction of queries whose true match ranks
/// first.
pub fn precision(ranks: &[usize]) -> f64 {
    if ranks.is_empty() {
        return 0.0;
    }
    ranks.iter().filter(|&&r| r == 1).count() as f64 / ranks.len() as f64
}

/// Mean rank (Eq. 12): the average rank of the true matches.
pub fn mean_rank(ranks: &[usize]) -> f64 {
    if ranks.is_empty() {
        return 0.0;
    }
    ranks.iter().sum::<usize>() as f64 / ranks.len() as f64
}

/// Cross-similarity deviation (Eq. 13) for one trajectory triple:
/// `|d(T1, T2') − d(T1, T2)| / |d(T1, T2)|`, where `T2'` is a
/// down-sampled version of `T2`. Works on similarities just as well as
/// on distances — it is a relative deviation. Returns `None` when the
/// reference value is zero (the deviation is undefined).
pub fn cross_similarity_deviation(reference: f64, downsampled: f64) -> Option<f64> {
    if reference == 0.0 {
        return None;
    }
    Some((downsampled - reference).abs() / reference.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_on_perfect_diagonal() {
        let sim = vec![
            vec![0.9, 0.1, 0.2],
            vec![0.0, 0.8, 0.3],
            vec![0.2, 0.1, 0.7],
        ];
        assert_eq!(ranks_of_true_matches(&sim), vec![1, 1, 1]);
        assert_eq!(precision(&[1, 1, 1]), 1.0);
        assert_eq!(mean_rank(&[1, 1, 1]), 1.0);
    }

    #[test]
    fn ranks_count_better_candidates() {
        let sim = vec![
            vec![0.5, 0.9, 0.7], // true match third
            vec![0.0, 0.8, 0.3], // first
        ];
        assert_eq!(ranks_of_true_matches(&sim), vec![3, 1]);
        assert_eq!(precision(&[3, 1]), 0.5);
        assert_eq!(mean_rank(&[3, 1]), 2.0);
    }

    #[test]
    fn ties_are_pessimistic() {
        // All-equal scores: the true match cannot be distinguished.
        let sim = vec![vec![0.5, 0.5], vec![0.5, 0.5]];
        assert_eq!(ranks_of_true_matches(&sim), vec![2, 2]);
        assert_eq!(precision(&[2, 2]), 0.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(precision(&[]), 0.0);
        assert_eq!(mean_rank(&[]), 0.0);
        assert!(ranks_of_true_matches(&[]).is_empty());
    }

    #[test]
    fn deviation_basics() {
        assert_eq!(cross_similarity_deviation(1.0, 1.0), Some(0.0));
        assert!((cross_similarity_deviation(0.5, 0.4).unwrap() - 0.2).abs() < 1e-12);
        assert!((cross_similarity_deviation(0.5, 0.6).unwrap() - 0.2).abs() < 1e-12);
        assert_eq!(cross_similarity_deviation(0.0, 0.3), None);
    }
}
