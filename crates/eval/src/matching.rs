//! The trajectory-matching task (paper §VI-B/C).
//!
//! Given paired datasets `D(1)`/`D(2)` where `d1[i]` and `d2[i]` belong
//! to the same object, a measure is evaluated by ranking, for each
//! `d1[i]`, all of `D(2)` by similarity and recording where `d2[i]`
//! lands.

use crate::metrics::ranks_of_true_matches;
use sts_baselines::SimilarityMeasure;
use sts_core::{JobConfig, JobError, JobReport, Sts};
use sts_traj::{MatchingPairs, Trajectory};

/// Anything that can produce a full query × candidate similarity matrix.
/// Separating this from [`SimilarityMeasure`] lets STS amortize its
/// per-trajectory preparation (speed KDE, noise distributions) across a
/// whole matrix instead of redoing it per pair.
pub trait MatrixMeasure: Send + Sync {
    /// Display name for reports.
    fn name(&self) -> &'static str;

    /// `matrix[i][j]` = similarity of `queries[i]` and `candidates[j]`.
    fn matrix(&self, queries: &[Trajectory], candidates: &[Trajectory]) -> Vec<Vec<f64>>;

    /// Similarity of a single pair (defaults to a 1×1 matrix).
    fn pair(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        self.matrix(std::slice::from_ref(a), std::slice::from_ref(b))[0][0]
    }
}

/// Baselines compute the matrix pair-by-pair with scoped threads.
impl<M: SimilarityMeasure> MatrixMeasure for M {
    fn name(&self) -> &'static str {
        SimilarityMeasure::name(self)
    }

    fn matrix(&self, queries: &[Trajectory], candidates: &[Trajectory]) -> Vec<Vec<f64>> {
        // `thread_count` honors `STS_THREADS` and falls back to
        // `available_parallelism()` (then 1), like every other
        // parallel path in the workspace.
        let n_threads = sts_runtime::thread_count(queries.len().max(1));
        let chunk = queries.len().div_ceil(n_threads).max(1);
        let mut rows: Vec<Vec<f64>> = vec![Vec::new(); queries.len()];
        std::thread::scope(|scope| {
            for (q_chunk, out_chunk) in queries.chunks(chunk).zip(rows.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (q, out) in q_chunk.iter().zip(out_chunk.iter_mut()) {
                        *out = candidates.iter().map(|c| self.similarity(q, c)).collect();
                    }
                });
            }
        });
        rows
    }
}

/// STS amortizes preparation via its own matrix path. Pairs that cannot
/// be prepared (e.g. a 1-point trajectory after aggressive
/// down-sampling) score 0 — an unmeasurable pair is maximally
/// dissimilar, never an error that aborts an experiment.
pub struct StsMatrix(pub Sts);

impl MatrixMeasure for StsMatrix {
    fn name(&self) -> &'static str {
        "STS"
    }

    fn matrix(&self, queries: &[Trajectory], candidates: &[Trajectory]) -> Vec<Vec<f64>> {
        // The degraded batch path quarantines unpreparable trajectories
        // and contains per-pair panics, so one broken trajectory costs
        // only its own cells — the rest of the experiment is unaffected.
        let (outcomes, _report) = self.0.similarity_matrix_degraded(queries, candidates);
        outcomes
            .into_iter()
            .map(|row| row.into_iter().map(|cell| cell.score_or(0.0)).collect())
            .collect()
    }

    fn pair(&self, a: &Trajectory, b: &Trajectory) -> f64 {
        self.0.similarity(a, b).unwrap_or(0.0)
    }
}

/// Runs the matching task: ranks of the true matches of every pair.
pub fn matching_ranks(measure: &dyn MatrixMeasure, pairs: &MatchingPairs) -> Vec<usize> {
    let matrix = measure.matrix(&pairs.d1, &pairs.d2);
    ranks_of_true_matches(&matrix)
}

/// The matching task under a supervised STS job: deadlines, cancellation
/// and checkpoint/resume all apply, and the [`JobReport`] tells the
/// caller how much of the matrix actually ran.
///
/// Cells that did not produce a score — quarantined, failed after
/// retries, or skipped by a deadline/budget — count as 0 similarity, so
/// the returned ranks are exact only when `report.is_complete()`. An
/// interrupted experiment still yields a well-formed (if pessimistic)
/// ranking plus the report needed to judge it.
pub fn matching_ranks_supervised(
    sts: &Sts,
    pairs: &MatchingPairs,
    cfg: &JobConfig,
) -> Result<(Vec<usize>, JobReport), JobError> {
    let (outcomes, report) = sts.similarity_matrix_supervised(&pairs.d1, &pairs.d2, cfg)?;
    let matrix: Vec<Vec<f64>> = outcomes
        .into_iter()
        .map(|row| row.into_iter().map(|cell| cell.score_or(0.0)).collect())
        .collect();
    Ok((ranks_of_true_matches(&matrix), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mean_rank, precision};
    use sts_baselines::Cats;
    use sts_core::StsConfig;
    use sts_geo::{BoundingBox, Grid, Point};
    use sts_traj::{Dataset, TrajPoint};

    fn walkers(n: usize) -> Dataset {
        // n well-separated straight-line walkers.
        (0..n)
            .map(|k| {
                let y = 20.0 * k as f64 + 5.0;
                Trajectory::new(
                    (0..12)
                        .map(|i| TrajPoint::from_xy(5.0 * i as f64, y, 5.0 * i as f64))
                        .collect(),
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn baseline_matrix_matches_pairwise() {
        let ds = walkers(3);
        let pairs = sts_traj::MatchingPairs::from_dataset(&ds);
        let cats = Cats::new(10.0, 20.0);
        let m = MatrixMeasure::matrix(&cats, &pairs.d1, &pairs.d2);
        for (i, row) in m.iter().enumerate() {
            for (j, got) in row.iter().enumerate() {
                let s = cats.similarity(&pairs.d1[i], &pairs.d2[j]);
                assert!((got - s).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn well_separated_walkers_match_perfectly() {
        let ds = walkers(4);
        let pairs = sts_traj::MatchingPairs::from_dataset(&ds);
        let grid = Grid::new(
            BoundingBox::new(Point::new(-5.0, -5.0), Point::new(100.0, 100.0)),
            4.0,
        )
        .unwrap();
        let sts = StsMatrix(Sts::new(
            StsConfig {
                noise_sigma: 3.0,
                ..StsConfig::default()
            },
            grid,
        ));
        let ranks = matching_ranks(&sts, &pairs);
        assert_eq!(precision(&ranks), 1.0, "ranks {ranks:?}");
        assert_eq!(mean_rank(&ranks), 1.0);
    }

    #[test]
    fn supervised_ranks_match_plain_ranks_on_clean_data() {
        let ds = walkers(4);
        let pairs = sts_traj::MatchingPairs::from_dataset(&ds);
        let grid = Grid::new(
            BoundingBox::new(Point::new(-5.0, -5.0), Point::new(100.0, 100.0)),
            4.0,
        )
        .unwrap();
        let sts = Sts::new(
            StsConfig {
                noise_sigma: 3.0,
                ..StsConfig::default()
            },
            grid,
        );
        let (ranks, report) =
            matching_ranks_supervised(&sts, &pairs, &JobConfig::default()).unwrap();
        assert!(report.is_complete(), "{report}");

        // A starved job still returns well-formed ranks and owns up to
        // the missing work in its report.
        let cfg = JobConfig {
            budget: sts_runtime::Budget::with_max_pairs(0),
            ..JobConfig::default()
        };
        let (starved, starved_report) = matching_ranks_supervised(&sts, &pairs, &cfg).unwrap();
        assert_eq!(starved.len(), pairs.d1.len());
        assert!(!starved_report.is_complete());
        assert_eq!(starved_report.stats.pairs_completed, 0);

        let plain = matching_ranks(&StsMatrix(sts), &pairs);
        assert_eq!(ranks, plain);
    }

    #[test]
    fn sts_matrix_scores_unpreparable_pairs_zero() {
        let good =
            Trajectory::from_xyt(&[(0.0, 0.0, 0.0), (5.0, 0.0, 5.0), (10.0, 0.0, 10.0)]).unwrap();
        let single = Trajectory::from_xyt(&[(0.0, 0.0, 0.0)]).unwrap();
        let grid = Grid::new(
            BoundingBox::new(Point::new(-5.0, -5.0), Point::new(20.0, 20.0)),
            2.0,
        )
        .unwrap();
        let sts = StsMatrix(Sts::new(StsConfig::default(), grid));
        let m = sts.matrix(
            &[good.clone(), single.clone()],
            &[good.clone(), single.clone()],
        );
        assert!(m[0][0] > 0.0);
        assert_eq!(m[0][1], 0.0);
        assert_eq!(m[1][0], 0.0);
        assert_eq!(m[1][1], 0.0);
        assert_eq!(sts.pair(&good, &single), 0.0);
    }
}
