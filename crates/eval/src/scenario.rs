//! The two evaluation scenarios (paper §VI-A).
//!
//! The paper evaluates on an outdoor taxi dataset (Porto) and an indoor
//! shopping-mall WiFi dataset; we rebuild both regimes with the seeded
//! synthetic generators of `sts-traj` (substitution rationale in
//! `DESIGN.md` §2). A scenario bundles the generated data, the paired
//! matching datasets of Fig. 3, and every scale-dependent parameter
//! (grid size, noise σ, baseline tolerances) so experiments and
//! measures stay scale-agnostic.

use sts_geo::{BoundingBox, Grid, Point};
use sts_traj::generators::{mall, taxi};
use sts_traj::{Dataset, MatchingPairs, MIN_EVAL_LEN};

/// Which of the paper's two datasets a scenario mirrors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Indoor pedestrian workload (shopping-mall WiFi substitute).
    Mall,
    /// Outdoor vehicle workload (Porto taxi substitute).
    Taxi,
}

impl ScenarioKind {
    /// Display name matching the paper's figure captions.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::Mall => "Shopping mall",
            ScenarioKind::Taxi => "Taxi",
        }
    }

    /// Both scenarios, mall first (the paper's sub-figure order).
    pub fn both() -> [ScenarioKind; 2] {
        [ScenarioKind::Mall, ScenarioKind::Taxi]
    }
}

/// Scenario construction parameters.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Which workload to generate.
    pub kind: ScenarioKind,
    /// Number of objects to generate (before the ≥ 20-point filter).
    pub n_objects: usize,
    /// Workload seed — scenarios are pure functions of their config.
    pub seed: u64,
}

impl ScenarioConfig {
    /// A scenario of the given kind with default size and seed.
    pub fn new(kind: ScenarioKind) -> Self {
        ScenarioConfig {
            kind,
            n_objects: 20,
            seed: 0x5757,
        }
    }
}

/// Scale-dependent parameters handed to the measures.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioScale {
    /// Default grid cell size, meters (paper §VI-A: 3 m mall, 100 m
    /// taxi).
    pub grid_size: f64,
    /// STS location-noise σ, meters.
    pub noise_sigma: f64,
    /// Spatial tolerance ε for CATS/LCSS/EDR, meters.
    pub spatial_eps: f64,
    /// Temporal window τ for CATS/LCSS, seconds.
    pub temporal_window: f64,
    /// Spatial decay scale for WGM/SST, meters.
    pub spatial_scale: f64,
    /// Temporal decay scale for WGM/SST, seconds.
    pub temporal_scale: f64,
    /// Unified resampling period for APM/KF, seconds.
    pub time_step: f64,
    /// KF measurement noise std, meters.
    pub kf_measurement_std: f64,
    /// KF process noise spectral density, m²/s³.
    pub kf_process_noise: f64,
    /// Noise sweep of Figs. 8–9, meters (β values).
    pub noise_levels: [f64; 5],
    /// Grid-size sweep of Figs. 12–14, meters.
    pub grid_sizes: [f64; 5],
    /// Fixed noise for the Fig. 10 ablation, meters (6 m mall, 20 m
    /// taxi).
    pub ablation_noise: f64,
}

/// A fully built evaluation scenario.
pub struct Scenario {
    /// Construction parameters.
    pub config: ScenarioConfig,
    /// Generated trajectories surviving the ≥ 20-point filter (§VI-A).
    pub dataset: Dataset,
    /// The paired D(1)/D(2) matching datasets (Fig. 3 split).
    pub pairs: MatchingPairs,
    /// The spatial area of interest the generators used.
    pub area: BoundingBox,
    /// Scale parameters.
    pub scale: ScenarioScale,
}

impl Scenario {
    /// Generates the scenario described by `config`.
    pub fn build(config: ScenarioConfig) -> Scenario {
        let (dataset, area, scale) = match config.kind {
            ScenarioKind::Mall => {
                let gen_cfg = mall::MallConfig {
                    n_pedestrians: config.n_objects,
                    seed: config.seed,
                    ..mall::MallConfig::default()
                };
                let area =
                    BoundingBox::new(Point::ORIGIN, Point::new(gen_cfg.width, gen_cfg.height));
                let ds = mall::generate(&gen_cfg).dataset();
                (
                    ds,
                    area,
                    ScenarioScale {
                        grid_size: 3.0,
                        noise_sigma: 3.0,
                        spatial_eps: 6.0,
                        temporal_window: 60.0,
                        spatial_scale: 6.0,
                        temporal_scale: 60.0,
                        time_step: 20.0,
                        kf_measurement_std: 3.0,
                        kf_process_noise: 0.2,
                        noise_levels: [0.0, 2.0, 4.0, 6.0, 8.0],
                        grid_sizes: [1.0, 2.0, 3.0, 4.5, 6.0],
                        ablation_noise: 6.0,
                    },
                )
            }
            ScenarioKind::Taxi => {
                let gen_cfg = taxi::TaxiConfig {
                    n_taxis: config.n_objects,
                    seed: config.seed,
                    ..taxi::TaxiConfig::default()
                };
                let area = BoundingBox::new(
                    Point::ORIGIN,
                    Point::new(gen_cfg.city_size, gen_cfg.city_size),
                );
                let ds = taxi::generate(&gen_cfg).dataset();
                (
                    ds,
                    area,
                    ScenarioScale {
                        grid_size: 100.0,
                        noise_sigma: 50.0,
                        spatial_eps: 200.0,
                        temporal_window: 90.0,
                        spatial_scale: 100.0,
                        temporal_scale: 120.0,
                        time_step: 30.0,
                        kf_measurement_std: 30.0,
                        kf_process_noise: 2.0,
                        noise_levels: [0.0, 20.0, 40.0, 60.0, 100.0],
                        grid_sizes: [50.0, 100.0, 150.0, 200.0, 250.0],
                        ablation_noise: 20.0,
                    },
                )
            }
        };
        let dataset = dataset.filter_min_len(MIN_EVAL_LEN);
        let pairs = MatchingPairs::from_dataset(&dataset);
        Scenario {
            config,
            dataset,
            pairs,
            area,
            scale,
        }
    }

    /// The scenario's display name.
    pub fn name(&self) -> &'static str {
        self.config.kind.name()
    }

    /// A grid over the scenario's area with the given cell size. The
    /// area is inflated by a cell so that noise-displaced observations
    /// remain snappable.
    pub fn grid(&self, cell_size: f64) -> Grid {
        Grid::new(self.area.inflated(cell_size), cell_size)
            .expect("scenario areas produce valid grids")
    }

    /// The grid at the paper's default cell size for this dataset.
    pub fn default_grid(&self) -> Grid {
        self.grid(self.scale.grid_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mall_scenario_builds() {
        let s = Scenario::build(ScenarioConfig {
            n_objects: 8,
            ..ScenarioConfig::new(ScenarioKind::Mall)
        });
        assert!(!s.pairs.is_empty());
        assert_eq!(s.pairs.d1.len(), s.pairs.d2.len());
        for t in s.dataset.trajectories() {
            assert!(t.len() >= MIN_EVAL_LEN);
        }
        assert_eq!(s.name(), "Shopping mall");
    }

    #[test]
    fn taxi_scenario_builds() {
        let s = Scenario::build(ScenarioConfig {
            n_objects: 8,
            ..ScenarioConfig::new(ScenarioKind::Taxi)
        });
        assert!(!s.pairs.is_empty());
        assert_eq!(s.scale.grid_size, 100.0);
        assert_eq!(s.name(), "Taxi");
    }

    #[test]
    fn scenarios_are_deterministic() {
        let cfg = ScenarioConfig {
            n_objects: 5,
            ..ScenarioConfig::new(ScenarioKind::Mall)
        };
        let a = Scenario::build(cfg.clone());
        let b = Scenario::build(cfg);
        assert_eq!(a.dataset.trajectories(), b.dataset.trajectories());
    }

    #[test]
    fn grids_cover_area() {
        let s = Scenario::build(ScenarioConfig {
            n_objects: 5,
            ..ScenarioConfig::new(ScenarioKind::Mall)
        });
        let g = s.default_grid();
        for t in s.dataset.trajectories() {
            for p in t.points() {
                assert!(g.cell_at(p.loc).is_some(), "point outside grid");
            }
        }
    }

    #[test]
    fn pairs_halves_belong_to_same_object() {
        let s = Scenario::build(ScenarioConfig {
            n_objects: 6,
            ..ScenarioConfig::new(ScenarioKind::Mall)
        });
        for (a, b) in s.pairs.d1.iter().zip(&s.pairs.d2) {
            // Interleaved timestamps: a starts before b; spans overlap.
            assert!(a.start_time() < b.start_time());
            assert!(a.end_time() >= b.start_time());
        }
    }
}
