//! The measure zoo: STS, its ablation variants and every baseline,
//! instantiated with a scenario's scale parameters (paper §VI-A: "The
//! experiment settings for baseline approaches are adopted as introduced
//! in prior works" — here: scaled to each dataset's spatial/temporal
//! regime).

use crate::matching::{MatrixMeasure, StsMatrix};
use crate::scenario::Scenario;
use sts_baselines::{Apm, Cats, DiscreteFrechet, Dtw, Edr, Edwp, Erp, KalmanDtw, Lcss, Sst, Wgm};
use sts_core::{Sts, StsConfig, StsVariant};
use sts_stats::KalmanConfig;
use sts_traj::{MatchingPairs, Trajectory};

/// Every measure the harness can evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeasureKind {
    /// Full STS (the paper's contribution).
    Sts,
    /// STS without the noise model (ablation).
    StsN,
    /// STS with a global speed distribution (ablation).
    StsG,
    /// STS with frequency-based transitions (ablation).
    StsF,
    /// CATS [21].
    Cats,
    /// SST [32].
    Sst,
    /// WGM [19].
    Wgm,
    /// APM [34] (+ DTW).
    Apm,
    /// EDwP [15].
    Edwp,
    /// Kalman filter + DTW.
    Kf,
    /// Classic DTW [13].
    Dtw,
    /// Classic LCSS [18].
    Lcss,
    /// Classic EDR [14].
    Edr,
    /// Classic ERP [28].
    Erp,
    /// Discrete Fréchet [30].
    Frechet,
}

impl MeasureKind {
    /// Display name (matches the paper's legends).
    pub fn name(&self) -> &'static str {
        match self {
            MeasureKind::Sts => "STS",
            MeasureKind::StsN => "STS-N",
            MeasureKind::StsG => "STS-G",
            MeasureKind::StsF => "STS-F",
            MeasureKind::Cats => "CATS",
            MeasureKind::Sst => "SST",
            MeasureKind::Wgm => "WGM",
            MeasureKind::Apm => "APM",
            MeasureKind::Edwp => "EDwP",
            MeasureKind::Kf => "KF",
            MeasureKind::Dtw => "DTW",
            MeasureKind::Lcss => "LCSS",
            MeasureKind::Edr => "EDR",
            MeasureKind::Erp => "ERP",
            MeasureKind::Frechet => "Frechet",
        }
    }

    /// The measure line-up of the main comparison figures (Figs. 4–9).
    pub fn comparison_set() -> &'static [MeasureKind] {
        &[
            MeasureKind::Sts,
            MeasureKind::Cats,
            MeasureKind::Sst,
            MeasureKind::Wgm,
            MeasureKind::Apm,
            MeasureKind::Edwp,
            MeasureKind::Kf,
        ]
    }

    /// The ablation line-up of Fig. 10.
    pub fn ablation_set() -> &'static [MeasureKind] {
        &[
            MeasureKind::Sts,
            MeasureKind::StsN,
            MeasureKind::StsG,
            MeasureKind::StsF,
        ]
    }

    /// The cross-similarity line-up of Fig. 11.
    pub fn cross_similarity_set() -> &'static [MeasureKind] {
        &[
            MeasureKind::Sts,
            MeasureKind::Cats,
            MeasureKind::Wgm,
            MeasureKind::Sst,
        ]
    }
}

/// Builds one measure for a scenario at a given grid size. `corpus`
/// provides the historical data the non-personalized STS variants
/// learn from — pass the (possibly transformed) evaluation trajectories
/// themselves, exactly as the paper's universal baselines would.
pub fn make_measure(
    kind: MeasureKind,
    scenario: &Scenario,
    corpus: &[Trajectory],
    grid_size: f64,
) -> Box<dyn MatrixMeasure> {
    let scale = scenario.scale;
    let grid = scenario.grid(grid_size);
    let sts_config = StsConfig {
        noise_sigma: scale.noise_sigma,
        ..StsConfig::default()
    };
    match kind {
        MeasureKind::Sts => Box::new(StsMatrix(Sts::new(sts_config, grid))),
        MeasureKind::StsN | MeasureKind::StsG | MeasureKind::StsF => {
            let variant = match kind {
                MeasureKind::StsN => StsVariant::NoNoise,
                MeasureKind::StsG => StsVariant::GlobalSpeed,
                _ => StsVariant::FrequencyBased,
            };
            let sts = Sts::variant(sts_config, grid, variant, corpus)
                .expect("corpus trajectories have >= 2 points");
            Box::new(NamedSts {
                inner: StsMatrix(sts),
                name: kind.name(),
            })
        }
        MeasureKind::Cats => Box::new(Cats::new(scale.spatial_eps, scale.temporal_window)),
        MeasureKind::Sst => Box::new(Sst::new(scale.spatial_scale, scale.temporal_scale)),
        MeasureKind::Wgm => Box::new(Wgm::new(scale.spatial_scale, scale.temporal_scale, 0.5)),
        MeasureKind::Apm => Box::new(Apm::new(grid, scale.time_step)),
        MeasureKind::Edwp => Box::new(Edwp::new()),
        MeasureKind::Kf => Box::new(KalmanDtw::new(
            KalmanConfig {
                process_noise: scale.kf_process_noise,
                measurement_std: scale.kf_measurement_std,
                initial_velocity_var: 100.0,
            },
            scale.time_step,
        )),
        MeasureKind::Dtw => Box::new(Dtw::new()),
        MeasureKind::Lcss => Box::new(Lcss::new(scale.spatial_eps, Some(scale.temporal_window))),
        MeasureKind::Edr => Box::new(Edr::new(scale.spatial_eps)),
        MeasureKind::Erp => Box::new(Erp::new(scenario.area.center())),
        MeasureKind::Frechet => Box::new(DiscreteFrechet::new()),
    }
}

/// Builds the whole set for a figure at the scenario's default grid.
pub fn measure_set(
    kinds: &[MeasureKind],
    scenario: &Scenario,
    pairs: &MatchingPairs,
) -> Vec<(&'static str, Box<dyn MatrixMeasure>)> {
    let corpus: Vec<Trajectory> = pairs
        .d1
        .iter()
        .chain(&pairs.d2)
        .filter(|t| t.len() >= 2)
        .cloned()
        .collect();
    kinds
        .iter()
        .map(|&k| {
            (
                k.name(),
                make_measure(k, scenario, &corpus, scenario.scale.grid_size),
            )
        })
        .collect()
}

/// Wraps an STS variant so its report name says which variant it is.
struct NamedSts {
    inner: StsMatrix,
    name: &'static str,
}

impl MatrixMeasure for NamedSts {
    fn name(&self) -> &'static str {
        self.name
    }

    fn matrix(&self, q: &[Trajectory], c: &[Trajectory]) -> Vec<Vec<f64>> {
        self.inner.matrix(q, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioConfig, ScenarioKind};

    fn scenario() -> Scenario {
        Scenario::build(ScenarioConfig {
            n_objects: 5,
            ..ScenarioConfig::new(ScenarioKind::Mall)
        })
    }

    #[test]
    fn every_measure_constructs_and_scores() {
        let s = scenario();
        let all = [
            MeasureKind::Sts,
            MeasureKind::StsN,
            MeasureKind::StsG,
            MeasureKind::StsF,
            MeasureKind::Cats,
            MeasureKind::Sst,
            MeasureKind::Wgm,
            MeasureKind::Apm,
            MeasureKind::Edwp,
            MeasureKind::Kf,
            MeasureKind::Dtw,
            MeasureKind::Lcss,
            MeasureKind::Edr,
            MeasureKind::Erp,
            MeasureKind::Frechet,
        ];
        let a = &s.pairs.d1[0];
        let b = &s.pairs.d2[0];
        let c = &s.pairs.d2[1 % s.pairs.len()];
        let set = measure_set(&all, &s, &s.pairs);
        assert_eq!(set.len(), all.len());
        for (name, m) in &set {
            let s_true = m.pair(a, b);
            let s_other = m.pair(a, c);
            assert!(s_true.is_finite(), "{name} not finite");
            assert!(s_other.is_finite(), "{name} not finite");
        }
    }

    #[test]
    fn line_ups_match_paper() {
        assert_eq!(MeasureKind::comparison_set().len(), 7);
        assert_eq!(MeasureKind::ablation_set().len(), 4);
        assert_eq!(MeasureKind::cross_similarity_set().len(), 4);
        assert_eq!(MeasureKind::comparison_set()[0].name(), "STS");
    }

    #[test]
    fn variant_names_propagate() {
        let s = scenario();
        let set = measure_set(MeasureKind::ablation_set(), &s, &s.pairs);
        let names: Vec<&str> = set
            .iter()
            .map(|(n, m)| {
                assert_eq!(*n, m.name());
                m.name()
            })
            .collect();
        assert_eq!(names, vec!["STS", "STS-N", "STS-G", "STS-F"]);
    }
}
