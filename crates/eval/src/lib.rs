#![warn(missing_docs)]
//! # sts-eval — evaluation harness
//!
//! Everything §VI of the paper does, as a library:
//!
//! * [`metrics`] — precision (Eq. 11), mean rank (Eq. 12) and
//!   cross-similarity deviation (Eq. 13);
//! * [`matching`] — the trajectory-matching task over paired datasets
//!   `D(1)`/`D(2)`;
//! * [`measures`] — the measure zoo (STS, its ablation variants, and
//!   every baseline) instantiated with per-dataset parameters;
//! * [`scenario`] — the two evaluation scenarios (taxi / shopping mall)
//!   built from the seeded synthetic workloads;
//! * [`experiments`] — one driver per evaluation figure (Figs. 4–14)
//!   plus the headline-improvement summary;
//! * [`report`] — plain-text tables shaped like the paper's figures.
//!
//! The `repro` binary in `sts-bench` is a thin CLI over
//! [`experiments`].

pub mod experiments;
pub mod matching;
pub mod measures;
pub mod metrics;
pub mod report;
pub mod scenario;

pub use matching::{matching_ranks, matching_ranks_supervised, MatrixMeasure};
pub use measures::{measure_set, MeasureKind};
pub use report::{Series, Table};
pub use scenario::{Scenario, ScenarioConfig};
