//! Plain-text result tables shaped like the paper's figures.
//!
//! Each evaluation figure is a family of series (one per measure) over
//! a swept x-axis; [`Table`] holds that structure and renders it as an
//! aligned text table — the series the paper plots, as rows of numbers.

use std::fmt::Write as _;

/// One plotted line: a measure's metric over the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend name (e.g. `"STS"`, `"CATS"`).
    pub name: String,
    /// `(x, y)` points in sweep order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }
}

/// A figure reproduction: an id like `fig4a`, axis labels and series.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Identifier tying the table to the paper (e.g. `"fig4a"`).
    pub id: String,
    /// Human title (e.g. `"Precision vs sampling rate (mall)"`).
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// y-axis label.
    pub y_label: String,
    /// One series per measure.
    pub series: Vec<Series>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// The series with the given name, if present.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// All x values, taken from the first series (all series share the
    /// sweep).
    pub fn xs(&self) -> Vec<f64> {
        self.series
            .first()
            .map(|s| s.points.iter().map(|&(x, _)| x).collect())
            .unwrap_or_default()
    }

    /// Renders the aligned text table: header row of series names, one
    /// row per x value.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {} [{}]", self.title, self.id);
        let _ = writeln!(out, "   ({} vs {})", self.y_label, self.x_label);
        let col = 10usize;
        let _ = write!(
            out,
            "{:>col$}",
            self.x_label.chars().take(col).collect::<String>()
        );
        for s in &self.series {
            let _ = write!(out, "{:>col$}", s.name);
        }
        let _ = writeln!(out);
        for (i, x) in self.xs().iter().enumerate() {
            let _ = write!(out, "{x:>col$.3}");
            for s in &self.series {
                match s.points.get(i) {
                    Some(&(_, y)) => {
                        let _ = write!(out, "{y:>col$.4}");
                    }
                    None => {
                        let _ = write!(out, "{:>col$}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("fig4a", "Precision vs rate (mall)", "rate", "precision");
        let mut s1 = Series::new("STS");
        s1.push(0.1, 0.8);
        s1.push(0.5, 0.95);
        let mut s2 = Series::new("CATS");
        s2.push(0.1, 0.6);
        s2.push(0.5, 0.9);
        t.series.push(s1);
        t.series.push(s2);
        t
    }

    #[test]
    fn accessors() {
        let t = table();
        assert_eq!(t.xs(), vec![0.1, 0.5]);
        assert_eq!(t.series("STS").unwrap().points[1].1, 0.95);
        assert!(t.series("nope").is_none());
    }

    #[test]
    fn render_contains_everything() {
        let r = table().render();
        assert!(r.contains("fig4a"));
        assert!(r.contains("STS"));
        assert!(r.contains("CATS"));
        assert!(r.contains("0.9500"));
        assert!(r.contains("0.100"));
    }

    #[test]
    fn render_handles_missing_points() {
        let mut t = table();
        t.series[1].points.truncate(1);
        let r = t.render();
        assert!(r.contains('-'));
    }

    #[test]
    fn empty_table_renders() {
        let t = Table::new("x", "t", "x", "y");
        assert!(t.xs().is_empty());
        assert!(!t.render().is_empty());
    }
}
