//! Beyond-paper ablations (`DESIGN.md` §5).
//!
//! * `kernels` — the paper fixes the Gaussian kernel for the speed KDE
//!   (§IV-B); this sweep swaps in the other classic kernels and re-runs
//!   the stressed matching task.
//! * `stp` — dense (`O(|R|²)`, §V-C) versus truncated S-T probability
//!   computation: matching quality must be indistinguishable while the
//!   truncated path is much faster.
//! * `linking` — STS against the velocity-threshold linking family
//!   (FTL [1] / ST-Link [22] / SLIM [23], §II) and the interpolation
//!   baseline STED [33], on the cross-system matching task.

use super::noise::distort_pairs;
use super::sampling::downsample_pairs;
use super::ExperimentConfig;
use crate::matching::{matching_ranks, MatrixMeasure, StsMatrix};
use crate::metrics::{mean_rank, precision};
use crate::report::{Series, Table};
use std::time::Instant;
use sts_baselines::{Ftl, Sted};
use sts_core::{Sts, StsConfig};
use sts_stats::kernel::ALL_KERNELS;

/// Kernel-choice ablation: precision/mean-rank of STS per kernel on the
/// stressed mall task (x = kernel index in `ALL_KERNELS` order:
/// 0 gaussian, 1 epanechnikov, 2 uniform, 3 triangular).
pub fn kernels(cfg: &ExperimentConfig) -> Vec<Table> {
    let mut table = Table::new(
        "ext-kernels",
        "STS kernel ablation (x: 0 gaussian, 1 epanechnikov, 2 uniform, 3 triangular)",
        "kernel",
        "metric",
    );
    let mut s_prec = Series::new("precision");
    let mut s_rank = Series::new("mean-rank");
    let scenarios = cfg.scenarios();
    let scenario = &scenarios[0]; // mall
    let stressed = downsample_pairs(cfg, &scenario.pairs, 0.5, "kernels");
    let stressed = distort_pairs(cfg, &stressed, scenario.scale.ablation_noise, "kernels");
    for (i, kernel) in ALL_KERNELS.into_iter().enumerate() {
        let sts = StsMatrix(Sts::new(
            StsConfig {
                noise_sigma: scenario.scale.noise_sigma,
                kernel,
                ..StsConfig::default()
            },
            scenario.default_grid(),
        ));
        let ranks = matching_ranks(&sts, &stressed);
        s_prec.push(i as f64, precision(&ranks));
        s_rank.push(i as f64, mean_rank(&ranks));
    }
    table.series = vec![s_prec, s_rank];
    vec![table]
}

/// Dense-vs-truncated STP ablation on the mall task: matching quality
/// and wall-clock for both computation modes (x: 0 = truncated,
/// 1 = dense).
pub fn stp_modes(cfg: &ExperimentConfig) -> Vec<Table> {
    let mut table = Table::new(
        "ext-stp",
        "Dense vs truncated STP (x: 0 = truncated 4-sigma, 1 = dense)",
        "mode",
        "metric",
    );
    let mut s_prec = Series::new("precision");
    let mut s_rank = Series::new("mean-rank");
    let mut s_time = Series::new("time (s)");
    // The dense mode is O(|R|²) per bridge by design; a small population
    // suffices to demonstrate the equivalence and the cost gap.
    let scenarios = cfg.scenarios_sized(cfg.n_objects.min(4));
    let scenario = &scenarios[0]; // mall
    for (x, truncation_k) in [(0.0, Some(4.0)), (1.0, None)] {
        let sts = StsMatrix(Sts::new(
            StsConfig {
                noise_sigma: scenario.scale.noise_sigma,
                truncation_k,
                ..StsConfig::default()
            },
            scenario.default_grid(),
        ));
        let start = Instant::now();
        let ranks = matching_ranks(&sts, &scenario.pairs);
        s_time.push(x, start.elapsed().as_secs_f64());
        s_prec.push(x, precision(&ranks));
        s_rank.push(x, mean_rank(&ranks));
    }
    table.series = vec![s_prec, s_rank, s_time];
    vec![table]
}

/// STS versus the linking family (FTL with a pedestrian/vehicle global
/// speed threshold) and STED, under heterogeneous down-sampling (x =
/// rate α, mall then taxi tables).
pub fn linking(cfg: &ExperimentConfig) -> Vec<Table> {
    let mut out = Vec::new();
    for (scenario, suffix) in cfg.scenarios().iter().zip(["a", "b"]) {
        let mut table = Table::new(
            format!("ext-linking{suffix}"),
            format!(
                "STS vs linking family, precision vs alpha ({})",
                scenario.name()
            ),
            "alpha",
            "precision",
        );
        // Global speed thresholds "known" per scenario — generous bounds.
        let v_max = match scenario.config.kind {
            crate::scenario::ScenarioKind::Mall => 2.5,
            crate::scenario::ScenarioKind::Taxi => 30.0,
        };
        let measures: Vec<(&str, Box<dyn MatrixMeasure>)> = vec![
            (
                "STS",
                Box::new(StsMatrix(Sts::new(
                    StsConfig {
                        noise_sigma: scenario.scale.noise_sigma,
                        ..StsConfig::default()
                    },
                    scenario.default_grid(),
                ))),
            ),
            (
                "FTL",
                Box::new(Ftl::new(v_max, Some(scenario.scale.temporal_window))),
            ),
            (
                "STED",
                Box::new(Sted::new(scenario.scale.time_step / 4.0, 1e9)),
            ),
        ];
        for (name, _) in &measures {
            table.series.push(Series::new(*name));
        }
        for alpha in cfg.rates() {
            let pairs =
                super::heterogeneous::downsample_d2(cfg, &scenario.pairs, alpha, "ext-linking");
            for (i, (_, m)) in measures.iter().enumerate() {
                let ranks = matching_ranks(m.as_ref(), &pairs);
                table.series[i].push(alpha, precision(&ranks));
            }
        }
        out.push(table);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            n_objects: 4,
            ..Default::default()
        }
    }

    #[test]
    fn kernel_table_covers_all_kernels() {
        let t = kernels(&tiny());
        assert_eq!(t[0].series[0].points.len(), ALL_KERNELS.len());
    }

    #[test]
    fn stp_modes_agree_on_quality() {
        let t = stp_modes(&tiny());
        let prec = &t[0].series[0].points;
        assert!(
            (prec[0].1 - prec[1].1).abs() < 0.26,
            "modes diverge: {prec:?}"
        );
    }
}
