//! Figs. 6 & 7 — precision / mean rank versus heterogeneous sampling
//! rate α.
//!
//! "For each trajectory in D(2), we sample a sub-trajectory with a
//! sampling rate α and compute the similarity between the
//! sub-trajectories and trajectories in D(1). A smaller α indicates a
//! larger difference between two trajectories in the sampling rate"
//! (§VI-C). Only D(2) is down-sampled — the two sensing systems now
//! disagree in rate, the asynchrony STS is built for.

use super::ExperimentConfig;
use crate::matching::matching_ranks;
use crate::measures::{measure_set, MeasureKind};
use crate::metrics::{mean_rank, precision};
use crate::report::{Series, Table};
use crate::scenario::Scenario;
use sts_traj::sampling::downsample_fraction;
use sts_traj::MatchingPairs;

/// Down-samples only the D(2) side at rate `alpha`.
pub fn downsample_d2(
    cfg: &ExperimentConfig,
    pairs: &MatchingPairs,
    alpha: f64,
    tag: &str,
) -> MatchingPairs {
    let mut rng = cfg.rng(tag, (alpha * 1000.0) as u64);
    pairs.transform(
        |t| Some(t.clone()),
        |t| Some(downsample_fraction(t, alpha, &mut rng)),
    )
}

/// Runs the sweep for one scenario.
pub fn run_scenario(
    cfg: &ExperimentConfig,
    scenario: &Scenario,
    kinds: &[MeasureKind],
    suffix: &str,
) -> (Table, Table) {
    let mut prec = Table::new(
        format!("fig6{suffix}"),
        format!(
            "Precision vs heterogeneous sampling rate ({})",
            scenario.name()
        ),
        "alpha",
        "precision",
    );
    let mut rank = Table::new(
        format!("fig7{suffix}"),
        format!(
            "Mean rank vs heterogeneous sampling rate ({})",
            scenario.name()
        ),
        "alpha",
        "mean rank",
    );
    for kind in kinds {
        prec.series.push(Series::new(kind.name()));
        rank.series.push(Series::new(kind.name()));
    }
    for alpha in cfg.rates() {
        let pairs = downsample_d2(cfg, &scenario.pairs, alpha, "heterogeneous");
        let measures = measure_set(kinds, scenario, &pairs);
        for (i, (_, measure)) in measures.iter().enumerate() {
            let ranks = matching_ranks(measure.as_ref(), &pairs);
            prec.series[i].push(alpha, precision(&ranks));
            rank.series[i].push(alpha, mean_rank(&ranks));
        }
    }
    (prec, rank)
}

/// Runs Figs. 6 & 7 on both scenarios.
pub fn run(cfg: &ExperimentConfig) -> (Vec<Table>, Vec<Table>) {
    let mut fig6 = Vec::new();
    let mut fig7 = Vec::new();
    for (scenario, suffix) in cfg.scenarios().iter().zip(["a", "b"]) {
        let (p, r) = run_scenario(cfg, scenario, MeasureKind::comparison_set(), suffix);
        fig6.push(p);
        fig7.push(r);
    }
    (fig6, fig7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioConfig, ScenarioKind};

    #[test]
    fn only_d2_is_downsampled() {
        let cfg = ExperimentConfig {
            n_objects: 5,
            ..Default::default()
        };
        let s = Scenario::build(ScenarioConfig {
            n_objects: 5,
            ..ScenarioConfig::new(ScenarioKind::Mall)
        });
        let pairs = downsample_d2(&cfg, &s.pairs, 0.4, "t");
        for (orig, kept) in s.pairs.d1.iter().zip(&pairs.d1) {
            assert_eq!(orig, kept);
        }
        for (orig, small) in s.pairs.d2.iter().zip(&pairs.d2) {
            assert!(small.len() < orig.len());
        }
    }

    #[test]
    fn sweep_shape_with_cheap_measure() {
        let cfg = ExperimentConfig {
            n_objects: 4,
            ..Default::default()
        };
        let s = Scenario::build(ScenarioConfig {
            n_objects: 4,
            ..ScenarioConfig::new(ScenarioKind::Mall)
        });
        let (prec, rank) = run_scenario(&cfg, &s, &[MeasureKind::Wgm], "a");
        assert_eq!(prec.id, "fig6a");
        assert_eq!(rank.id, "fig7a");
        assert_eq!(prec.series[0].points.len(), cfg.rates().len());
    }
}
