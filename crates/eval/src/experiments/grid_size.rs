//! Figs. 12, 13 & 14 — impact of grid size on STS's efficiency and
//! effectiveness (§VI-E).
//!
//! "A small grid size means a larger number of grids, leading to a
//! better probability approximation but higher time cost." The sweep
//! reruns the STS matching task at each grid size, recording wall-clock
//! running time (Fig. 12), precision (Fig. 13) and mean rank (Fig. 14).

use super::ExperimentConfig;
use crate::matching::{matching_ranks, StsMatrix};
use crate::metrics::{mean_rank, precision};
use crate::report::{Series, Table};
use crate::scenario::Scenario;
use std::time::Instant;
use sts_core::{Sts, StsConfig};

/// Runs the sweep for one scenario; returns (time, precision, mean-rank)
/// series. Like the noise sweep, the matching task runs at a fixed 0.3
/// sampling rate + the ablation noise so that grid-size effects on
/// *quality* are visible at small population sizes (see
/// `EXPERIMENTS.md`); the *runtime* series is what it is either way.
pub fn run_scenario(
    cfg: &ExperimentConfig,
    scenario: &Scenario,
    suffix: &str,
) -> (Table, Table, Table) {
    let mut time = Table::new(
        format!("fig12{suffix}"),
        format!("STS running time vs grid size ({})", scenario.name()),
        "grid (m)",
        "time (s)",
    );
    let mut prec = Table::new(
        format!("fig13{suffix}"),
        format!("STS precision vs grid size ({})", scenario.name()),
        "grid (m)",
        "precision",
    );
    let mut rank = Table::new(
        format!("fig14{suffix}"),
        format!("STS mean rank vs grid size ({})", scenario.name()),
        "grid (m)",
        "mean rank",
    );
    let mut s_time = Series::new("STS");
    let mut s_prec = Series::new("STS");
    let mut s_rank = Series::new("STS");
    let stressed = super::sampling::downsample_pairs(cfg, &scenario.pairs, 0.3, "grid-stress");
    let stressed =
        super::noise::distort_pairs(cfg, &stressed, scenario.scale.ablation_noise, "grid-stress");
    for cell in scenario.scale.grid_sizes {
        let sts = StsMatrix(Sts::new(
            StsConfig {
                noise_sigma: scenario.scale.noise_sigma,
                ..StsConfig::default()
            },
            scenario.grid(cell),
        ));
        let start = Instant::now();
        let ranks = matching_ranks(&sts, &stressed);
        let elapsed = start.elapsed().as_secs_f64();
        s_time.push(cell, elapsed);
        s_prec.push(cell, precision(&ranks));
        s_rank.push(cell, mean_rank(&ranks));
    }
    time.series.push(s_time);
    prec.series.push(s_prec);
    rank.series.push(s_rank);
    (time, prec, rank)
}

/// Runs Figs. 12–14 on both scenarios. The population is capped (the
/// per-point cost is quadratic in it and the fine-grid points are the
/// expensive end by design — that steepness *is* Fig. 12's message).
pub fn run(cfg: &ExperimentConfig) -> (Vec<Table>, Vec<Table>, Vec<Table>) {
    let cap = if cfg.full { 12 } else { 8 };
    let mut f12 = Vec::new();
    let mut f13 = Vec::new();
    let mut f14 = Vec::new();
    for (scenario, suffix) in cfg
        .scenarios_sized(cfg.n_objects.min(cap))
        .iter()
        .zip(["a", "b"])
    {
        let (t, p, r) = run_scenario(cfg, scenario, suffix);
        f12.push(t);
        f13.push(p);
        f14.push(r);
    }
    (f12, f13, f14)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioConfig, ScenarioKind};

    #[test]
    fn sweep_covers_all_grid_sizes() {
        let cfg = ExperimentConfig {
            n_objects: 3,
            ..Default::default()
        };
        let s = Scenario::build(ScenarioConfig {
            n_objects: 3,
            ..ScenarioConfig::new(ScenarioKind::Mall)
        });
        let (time, prec, rank) = run_scenario(&cfg, &s, "a");
        assert_eq!(time.xs(), s.scale.grid_sizes.to_vec());
        assert_eq!(prec.xs(), s.scale.grid_sizes.to_vec());
        assert_eq!(rank.xs(), s.scale.grid_sizes.to_vec());
        for &(_, t) in &time.series[0].points {
            assert!(t > 0.0);
        }
        for &(_, p) in &prec.series[0].points {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
