//! Fig. 10 — effectiveness of each STS component.
//!
//! STS is compared against its own ablations (STS-N, STS-G, STS-F) on
//! both datasets with a fixed location noise (6 m mall, 20 m taxi —
//! §VI-C "Effectiveness of each component"). As in the noise sweep, a
//! fixed 0.3 sampling rate recreates the confusable regime the paper's
//! dataset sizes provide naturally (see `EXPERIMENTS.md`).

use super::noise::distort_pairs;
use super::ExperimentConfig;
use crate::matching::matching_ranks;
use crate::measures::{measure_set, MeasureKind};
use crate::metrics::{mean_rank, precision};
use crate::report::{Series, Table};

/// Runs Fig. 10: one precision table and one mean-rank table, x = the
/// dataset index (0 = mall, 1 = taxi), one series per variant — the
/// text form of the paper's grouped bars.
pub fn run(cfg: &ExperimentConfig) -> Vec<Table> {
    run_with(cfg, MeasureKind::ablation_set())
}

/// Like [`run`] with a custom variant subset (used by tests).
pub fn run_with(cfg: &ExperimentConfig, kinds: &[MeasureKind]) -> Vec<Table> {
    let mut prec = Table::new(
        "fig10a",
        "Ablation precision (x: 0 = mall, 1 = taxi)",
        "dataset",
        "precision",
    );
    let mut rank = Table::new(
        "fig10b",
        "Ablation mean rank (x: 0 = mall, 1 = taxi)",
        "dataset",
        "mean rank",
    );
    for kind in kinds {
        prec.series.push(Series::new(kind.name()));
        rank.series.push(Series::new(kind.name()));
    }
    for (x, scenario) in cfg.scenarios().iter().enumerate() {
        let stressed =
            super::sampling::downsample_pairs(cfg, &scenario.pairs, 0.3, "ablation-stress");
        let pairs = distort_pairs(cfg, &stressed, scenario.scale.ablation_noise, "ablation");
        let measures = measure_set(kinds, scenario, &pairs);
        for (i, (_, measure)) in measures.iter().enumerate() {
            let ranks = matching_ranks(measure.as_ref(), &pairs);
            prec.series[i].push(x as f64, precision(&ranks));
            rank.series[i].push(x as f64, mean_rank(&ranks));
        }
    }
    vec![prec, rank]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_one_point_per_dataset() {
        let cfg = ExperimentConfig {
            n_objects: 4,
            ..Default::default()
        };
        // Cheap subset: a single non-STS measure keeps the test fast
        // while validating the table plumbing.
        let tables = run_with(&cfg, &[MeasureKind::Cats]);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].id, "fig10a");
        assert_eq!(tables[0].series[0].points.len(), 2);
        assert_eq!(tables[1].series[0].points.len(), 2);
    }
}
