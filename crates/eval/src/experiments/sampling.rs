//! Figs. 4 & 5 — precision / mean rank versus (low) data sampling rate.
//!
//! "For each trajectory in D(1) and D(2), we sample a sub-trajectory
//! with a sampling rate, which is set to be 0.1 ∼ 0.9" (§VI-C). Both
//! sides are down-sampled, so the whole matching task gets sparser as
//! the rate drops.

use super::ExperimentConfig;
use crate::matching::matching_ranks;
use crate::measures::{measure_set, MeasureKind};
use crate::metrics::{mean_rank, precision};
use crate::report::{Series, Table};
use crate::scenario::Scenario;
use sts_traj::sampling::downsample_fraction;
use sts_traj::MatchingPairs;

/// Down-samples both sides of the pairs at `rate` with a deterministic
/// per-rate RNG.
pub fn downsample_pairs(
    cfg: &ExperimentConfig,
    pairs: &MatchingPairs,
    rate: f64,
    tag: &str,
) -> MatchingPairs {
    let mut rng = cfg.rng(tag, (rate * 1000.0) as u64);
    pairs.transform_both(|t| Some(downsample_fraction(t, rate, &mut rng)))
}

/// Runs the sweep for one scenario; returns (precision, mean-rank)
/// tables. `kinds` is exposed so tests can run cheap subsets.
pub fn run_scenario(
    cfg: &ExperimentConfig,
    scenario: &Scenario,
    kinds: &[MeasureKind],
    suffix: &str,
) -> (Table, Table) {
    let mut prec = Table::new(
        format!("fig4{suffix}"),
        format!("Precision vs data sampling rate ({})", scenario.name()),
        "rate",
        "precision",
    );
    let mut rank = Table::new(
        format!("fig5{suffix}"),
        format!("Mean rank vs data sampling rate ({})", scenario.name()),
        "rate",
        "mean rank",
    );
    for kind in kinds {
        prec.series.push(Series::new(kind.name()));
        rank.series.push(Series::new(kind.name()));
    }
    for rate in cfg.rates() {
        let pairs = downsample_pairs(cfg, &scenario.pairs, rate, "sampling");
        let measures = measure_set(kinds, scenario, &pairs);
        for (i, (_, measure)) in measures.iter().enumerate() {
            let ranks = matching_ranks(measure.as_ref(), &pairs);
            prec.series[i].push(rate, precision(&ranks));
            rank.series[i].push(rate, mean_rank(&ranks));
        }
    }
    (prec, rank)
}

/// Runs Figs. 4 & 5 on both scenarios.
pub fn run(cfg: &ExperimentConfig) -> (Vec<Table>, Vec<Table>) {
    let mut fig4 = Vec::new();
    let mut fig5 = Vec::new();
    for (scenario, suffix) in cfg.scenarios().iter().zip(["a", "b"]) {
        let (p, r) = run_scenario(cfg, scenario, MeasureKind::comparison_set(), suffix);
        fig4.push(p);
        fig5.push(r);
    }
    (fig4, fig5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioConfig, ScenarioKind};

    fn tiny() -> (ExperimentConfig, Scenario) {
        let cfg = ExperimentConfig {
            n_objects: 5,
            ..Default::default()
        };
        let s = Scenario::build(ScenarioConfig {
            n_objects: 5,
            ..ScenarioConfig::new(ScenarioKind::Mall)
        });
        (cfg, s)
    }

    #[test]
    fn downsampling_shrinks_both_sides() {
        let (cfg, s) = tiny();
        let pairs = downsample_pairs(&cfg, &s.pairs, 0.5, "t");
        assert_eq!(pairs.len(), s.pairs.len());
        for (orig, small) in s.pairs.d1.iter().zip(&pairs.d1) {
            assert_eq!(
                small.len(),
                ((orig.len() as f64 * 0.5).round() as usize).max(1)
            );
        }
    }

    #[test]
    fn downsampling_is_deterministic() {
        let (cfg, s) = tiny();
        let a = downsample_pairs(&cfg, &s.pairs, 0.3, "t");
        let b = downsample_pairs(&cfg, &s.pairs, 0.3, "t");
        assert_eq!(a.d1, b.d1);
        assert_eq!(a.d2, b.d2);
    }

    #[test]
    fn sweep_produces_full_tables_with_cheap_measure() {
        let (cfg, s) = tiny();
        let (prec, rank) = run_scenario(&cfg, &s, &[MeasureKind::Cats], "a");
        assert_eq!(prec.series.len(), 1);
        assert_eq!(prec.series[0].points.len(), cfg.rates().len());
        assert_eq!(rank.series[0].points.len(), cfg.rates().len());
        for &(_, p) in &prec.series[0].points {
            assert!((0.0..=1.0).contains(&p));
        }
        for &(_, r) in &rank.series[0].points {
            assert!(r >= 1.0);
        }
    }
}
