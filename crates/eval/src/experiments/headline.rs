//! The headline claim — "an improvement of 63% on precision and 85% on
//! mean rank" (abstract / §VI).
//!
//! The paper's aggregate improvements come from the stressed regimes
//! where the baselines break down. This driver reproduces the
//! aggregation: at a stressed setting (low sampling rate + the
//! ablation-level location noise) it measures precision and mean rank
//! for every comparison measure and reports STS's relative improvement
//! over the *best* baseline:
//!
//! * precision improvement = (P_STS − P_best) / P_best
//! * mean-rank improvement = (MR_best − MR_STS) / MR_best
//!   (mean rank improves downward)

use super::noise::distort_pairs;
use super::sampling::downsample_pairs;
use super::ExperimentConfig;
use crate::matching::matching_ranks;
use crate::measures::{measure_set, MeasureKind};
use crate::metrics::{mean_rank, precision};
use crate::report::{Series, Table};

/// The stressed sampling rate.
const STRESS_RATE: f64 = 0.3;

/// Runs the headline aggregation. Output table: x = dataset index
/// (0 = mall, 1 = taxi); series: STS precision/mean-rank, best-baseline
/// precision/mean-rank, and the two relative improvements.
pub fn run(cfg: &ExperimentConfig) -> Vec<Table> {
    run_with(cfg, MeasureKind::comparison_set())
}

/// Like [`run`] with a custom measure subset (first entry must be STS
/// for the improvement computation; tests use cheap subsets).
pub fn run_with(cfg: &ExperimentConfig, kinds: &[MeasureKind]) -> Vec<Table> {
    let mut table = Table::new(
        "headline",
        format!(
            "Headline improvement at rate {STRESS_RATE} + ablation noise (x: 0 = mall, 1 = taxi)"
        ),
        "dataset",
        "metric",
    );
    let mut s_sts_p = Series::new("STS-P");
    let mut s_best_p = Series::new("best-P");
    let mut s_imp_p = Series::new("impr-P");
    let mut s_sts_r = Series::new("STS-MR");
    let mut s_best_r = Series::new("best-MR");
    let mut s_imp_r = Series::new("impr-MR");
    for (x, scenario) in cfg.scenarios().iter().enumerate() {
        let stressed = downsample_pairs(cfg, &scenario.pairs, STRESS_RATE, "headline");
        let stressed = distort_pairs(cfg, &stressed, scenario.scale.ablation_noise, "headline");
        let measures = measure_set(kinds, scenario, &stressed);
        let mut sts_p = 0.0;
        let mut sts_r = f64::INFINITY;
        let mut best_p: f64 = 0.0;
        let mut best_r = f64::INFINITY;
        for (name, measure) in &measures {
            let ranks = matching_ranks(measure.as_ref(), &stressed);
            let p = precision(&ranks);
            let r = mean_rank(&ranks);
            if *name == "STS" {
                sts_p = p;
                sts_r = r;
            } else {
                best_p = best_p.max(p);
                best_r = best_r.min(r);
            }
        }
        let x = x as f64;
        s_sts_p.push(x, sts_p);
        s_best_p.push(x, best_p);
        s_imp_p.push(
            x,
            if best_p > 0.0 {
                (sts_p - best_p) / best_p
            } else {
                0.0
            },
        );
        s_sts_r.push(x, sts_r);
        s_best_r.push(x, best_r);
        s_imp_r.push(
            x,
            if best_r.is_finite() && best_r > 0.0 {
                (best_r - sts_r) / best_r
            } else {
                0.0
            },
        );
    }
    table.series = vec![s_sts_p, s_best_p, s_imp_p, s_sts_r, s_best_r, s_imp_r];
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_table_shape() {
        let cfg = ExperimentConfig {
            n_objects: 4,
            ..Default::default()
        };
        // Cheap subset: two baselines, no STS — improvements are then
        // relative to best-of-two with STS metrics at their defaults.
        let tables = run_with(&cfg, &[MeasureKind::Cats, MeasureKind::Wgm]);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.series.len(), 6);
        for s in &t.series {
            assert_eq!(s.points.len(), 2, "series {}", s.name);
        }
    }
}
