//! Per-figure experiment drivers (paper §VI-C/D/E).
//!
//! Every evaluation figure of the paper has a driver that regenerates
//! its series (paper-vs-measured shapes are recorded in
//! `EXPERIMENTS.md`):
//!
//! | id        | paper figure | driver |
//! |-----------|--------------|--------|
//! | `fig4`    | Fig. 4(a,b)  | [`sampling`] (precision) |
//! | `fig5`    | Fig. 5(a,b)  | [`sampling`] (mean rank) |
//! | `fig6`    | Fig. 6(a,b)  | [`heterogeneous`] (precision) |
//! | `fig7`    | Fig. 7(a,b)  | [`heterogeneous`] (mean rank) |
//! | `fig8`    | Fig. 8(a,b)  | [`noise`] (precision) |
//! | `fig9`    | Fig. 9(a,b)  | [`noise`] (mean rank) |
//! | `fig10`   | Fig. 10(a,b) | [`ablation`] |
//! | `fig11`   | Fig. 11(a,b) | [`cross_similarity`] |
//! | `fig12`   | Fig. 12(a,b) | [`grid_size`] (running time) |
//! | `fig13`   | Fig. 13(a,b) | [`grid_size`] (precision) |
//! | `fig14`   | Fig. 14(a,b) | [`grid_size`] (mean rank) |
//! | `headline`| §VI summary  | [`headline`] |

pub mod ablation;
pub mod cross_similarity;
pub mod extensions;
pub mod grid_size;
pub mod headline;
pub mod heterogeneous;
pub mod noise;
pub mod sampling;

use crate::report::Table;
use crate::scenario::{Scenario, ScenarioConfig, ScenarioKind};
use sts_rng::Xoshiro256pp;

/// Shared experiment parameters. The defaults are sized for a
/// single-core machine; `full: true` runs the paper's denser sweeps and
/// larger populations.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Objects per scenario.
    pub n_objects: usize,
    /// Master seed; every derived RNG is a pure function of it.
    pub seed: u64,
    /// Dense sweeps (all of 0.1..=0.9 etc.) instead of the quick ones.
    pub full: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            n_objects: 20,
            seed: 7,
            full: false,
        }
    }
}

impl ExperimentConfig {
    /// The sampling-rate sweep (Figs. 4–7, 11).
    pub fn rates(&self) -> Vec<f64> {
        if self.full {
            (1..=9).map(|i| i as f64 / 10.0).collect()
        } else {
            vec![0.1, 0.3, 0.5, 0.7, 0.9]
        }
    }

    /// Builds both scenarios at this config's size.
    pub fn scenarios(&self) -> Vec<Scenario> {
        self.scenarios_sized(self.n_objects)
    }

    /// Builds both scenarios at an explicit size (used by sweeps whose
    /// per-point cost is quadratic in the population, e.g. the
    /// fine-grid end of Figs. 12–14).
    pub fn scenarios_sized(&self, n_objects: usize) -> Vec<Scenario> {
        ScenarioKind::both()
            .into_iter()
            .map(|kind| {
                Scenario::build(ScenarioConfig {
                    kind,
                    n_objects,
                    seed: self.seed,
                })
            })
            .collect()
    }

    /// Deterministic RNG for a named experiment step.
    pub fn rng(&self, tag: &str, salt: u64) -> Xoshiro256pp {
        let mut h: u64 = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for b in tag.bytes() {
            h = h.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
        }
        Xoshiro256pp::seed_from_u64(h.wrapping_add(salt.wrapping_mul(0x2545_F491_4F6C_DD1D)))
    }
}

/// All experiment ids, in paper order.
pub fn experiment_ids() -> &'static [&'static str] {
    &[
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "headline",
        "ext-kernels",
        "ext-stp",
        "ext-linking",
    ]
}

/// Runs one experiment by id (`"all"` runs everything in paper order).
/// Returns `None` for an unknown id.
pub fn run(id: &str, cfg: &ExperimentConfig) -> Option<Vec<Table>> {
    match id {
        "fig4" => Some(sampling::run(cfg).0),
        "fig5" => Some(sampling::run(cfg).1),
        "fig6" => Some(heterogeneous::run(cfg).0),
        "fig7" => Some(heterogeneous::run(cfg).1),
        "fig8" => Some(noise::run(cfg).0),
        "fig9" => Some(noise::run(cfg).1),
        "fig10" => Some(ablation::run(cfg)),
        "fig11" => Some(cross_similarity::run(cfg)),
        "fig12" | "fig13" | "fig14" => {
            let (t12, t13, t14) = grid_size::run(cfg);
            Some(match id {
                "fig12" => t12,
                "fig13" => t13,
                _ => t14,
            })
        }
        "headline" => Some(headline::run(cfg)),
        "ext-kernels" => Some(extensions::kernels(cfg)),
        "ext-stp" => Some(extensions::stp_modes(cfg)),
        "ext-linking" => Some(extensions::linking(cfg)),
        "all" => {
            let mut out = Vec::new();
            let (f4, f5) = sampling::run(cfg);
            let (f6, f7) = heterogeneous::run(cfg);
            let (f8, f9) = noise::run(cfg);
            let (f12, f13, f14) = grid_size::run(cfg);
            out.extend(f4);
            out.extend(f5);
            out.extend(f6);
            out.extend(f7);
            out.extend(f8);
            out.extend(f9);
            out.extend(ablation::run(cfg));
            out.extend(cross_similarity::run(cfg));
            out.extend(f12);
            out.extend(f13);
            out.extend(f14);
            out.extend(headline::run(cfg));
            out.extend(extensions::kernels(cfg));
            out.extend(extensions::stp_modes(cfg));
            out.extend(extensions::linking(cfg));
            Some(out)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_sweeps() {
        let quick = ExperimentConfig::default();
        assert_eq!(quick.rates(), vec![0.1, 0.3, 0.5, 0.7, 0.9]);
        let full = ExperimentConfig {
            full: true,
            ..Default::default()
        };
        assert_eq!(full.rates().len(), 9);
    }

    #[test]
    fn rng_is_deterministic_and_tag_sensitive() {
        use sts_rng::Rng;
        let cfg = ExperimentConfig::default();
        let a = cfg.rng("x", 1).next_u64();
        let b = cfg.rng("x", 1).next_u64();
        let c = cfg.rng("y", 1).next_u64();
        let d = cfg.rng("x", 2).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run("fig99", &ExperimentConfig::default()).is_none());
    }

    #[test]
    fn experiment_ids_cover_every_figure() {
        let ids = experiment_ids();
        assert_eq!(ids.len(), 15);
        for fig in 4..=14 {
            assert!(ids.contains(&format!("fig{fig}").as_str()));
        }
        assert!(ids.contains(&"headline"));
        assert!(ids.iter().filter(|i| i.starts_with("ext-")).count() == 3);
    }
}
