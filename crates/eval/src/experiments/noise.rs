//! Figs. 8 & 9 — precision / mean rank versus location noise.
//!
//! "We distort the location in trajectories from the datasets D(1) and
//! D(2) by adding a Gaussian noise with radius β meters" (Eq. 14,
//! §VI-C). β sweeps 2–8 m on the mall and 20–100 m on the taxi data.
//!
//! **Scale adaptation** (documented in `EXPERIMENTS.md`): the paper's
//! datasets have thousands of candidates, so noise alone creates
//! confusion; our populations are two orders of magnitude smaller and
//! full-length trajectories remain trivially separable under any β.
//! To recreate the operating point the figure studies, the sweep is run
//! at a fixed 0.3 sampling rate (the same stress the paper applies in
//! Figs. 4–5).

use super::ExperimentConfig;
use crate::matching::matching_ranks;
use crate::measures::{measure_set, MeasureKind};
use crate::metrics::{mean_rank, precision};
use crate::report::{Series, Table};
use crate::scenario::Scenario;
use sts_traj::noise::add_gaussian_noise;
use sts_traj::MatchingPairs;

/// Adds Eq. 14 noise of radius `beta` to both sides.
pub fn distort_pairs(
    cfg: &ExperimentConfig,
    pairs: &MatchingPairs,
    beta: f64,
    tag: &str,
) -> MatchingPairs {
    let mut rng = cfg.rng(tag, beta as u64);
    pairs.transform_both(|t| Some(add_gaussian_noise(t, beta, &mut rng)))
}

/// Runs the sweep for one scenario.
pub fn run_scenario(
    cfg: &ExperimentConfig,
    scenario: &Scenario,
    kinds: &[MeasureKind],
    suffix: &str,
) -> (Table, Table) {
    let mut prec = Table::new(
        format!("fig8{suffix}"),
        format!("Precision vs location noise ({})", scenario.name()),
        "noise (m)",
        "precision",
    );
    let mut rank = Table::new(
        format!("fig9{suffix}"),
        format!("Mean rank vs location noise ({})", scenario.name()),
        "noise (m)",
        "mean rank",
    );
    for kind in kinds {
        prec.series.push(Series::new(kind.name()));
        rank.series.push(Series::new(kind.name()));
    }
    let stressed = super::sampling::downsample_pairs(cfg, &scenario.pairs, 0.3, "noise-stress");
    for beta in scenario.scale.noise_levels {
        let pairs = distort_pairs(cfg, &stressed, beta, "noise");
        let measures = measure_set(kinds, scenario, &pairs);
        for (i, (_, measure)) in measures.iter().enumerate() {
            let ranks = matching_ranks(measure.as_ref(), &pairs);
            prec.series[i].push(beta, precision(&ranks));
            rank.series[i].push(beta, mean_rank(&ranks));
        }
    }
    (prec, rank)
}

/// Runs Figs. 8 & 9 on both scenarios.
pub fn run(cfg: &ExperimentConfig) -> (Vec<Table>, Vec<Table>) {
    let mut fig8 = Vec::new();
    let mut fig9 = Vec::new();
    for (scenario, suffix) in cfg.scenarios().iter().zip(["a", "b"]) {
        let (p, r) = run_scenario(cfg, scenario, MeasureKind::comparison_set(), suffix);
        fig8.push(p);
        fig9.push(r);
    }
    (fig8, fig9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioConfig, ScenarioKind};

    #[test]
    fn distortion_moves_points_but_keeps_structure() {
        let cfg = ExperimentConfig {
            n_objects: 5,
            ..Default::default()
        };
        let s = Scenario::build(ScenarioConfig {
            n_objects: 5,
            ..ScenarioConfig::new(ScenarioKind::Mall)
        });
        let noisy = distort_pairs(&cfg, &s.pairs, 4.0, "t");
        assert_eq!(noisy.len(), s.pairs.len());
        let mut moved = 0;
        for (orig, n) in s.pairs.d1.iter().zip(&noisy.d1) {
            assert_eq!(orig.len(), n.len());
            for (p, q) in orig.points().iter().zip(n.points()) {
                assert_eq!(p.t, q.t);
                if p.loc.distance(&q.loc) > 0.0 {
                    moved += 1;
                }
            }
        }
        assert!(moved > 0);
    }

    #[test]
    fn zero_beta_is_identity() {
        let cfg = ExperimentConfig {
            n_objects: 4,
            ..Default::default()
        };
        let s = Scenario::build(ScenarioConfig {
            n_objects: 4,
            ..ScenarioConfig::new(ScenarioKind::Mall)
        });
        let same = distort_pairs(&cfg, &s.pairs, 0.0, "t");
        assert_eq!(same.d1, s.pairs.d1);
    }

    #[test]
    fn sweep_uses_scenario_noise_levels() {
        let cfg = ExperimentConfig {
            n_objects: 4,
            ..Default::default()
        };
        let s = Scenario::build(ScenarioConfig {
            n_objects: 4,
            ..ScenarioConfig::new(ScenarioKind::Mall)
        });
        let (prec, _) = run_scenario(&cfg, &s, &[MeasureKind::Wgm], "a");
        let xs = prec.xs();
        assert_eq!(xs, s.scale.noise_levels.to_vec());
    }
}
