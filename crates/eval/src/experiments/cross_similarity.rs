//! Fig. 11 — cross-similarity deviation versus heterogeneous sampling.
//!
//! "We randomly selected 1000 pair of trajectories (Tra1, Tra2) from a
//! dataset. For each Tra2, we down-sampled 9 sub-trajectories from it
//! with a different sampling rate α" (§VI-D). The deviation (Eq. 13)
//! says how well a measure preserves a pair's similarity under
//! resampling; lower is better. Only STS, CATS, WGM and SST are
//! compared (the paper drops EDwP/APM/KF here for their poor matching
//! performance).

use super::ExperimentConfig;
use crate::measures::{make_measure, MeasureKind};
use crate::metrics::cross_similarity_deviation;
use crate::report::{Series, Table};
use crate::scenario::Scenario;
use sts_rng::Rng;
use sts_traj::sampling::downsample_fraction;
use sts_traj::Trajectory;

/// Number of random pairs at the default (quick) size.
const QUICK_PAIRS: usize = 30;
/// Number of random pairs with `full: true` (the paper used 1000).
const FULL_PAIRS: usize = 200;

/// Runs the sweep for one scenario.
pub fn run_scenario(
    cfg: &ExperimentConfig,
    scenario: &Scenario,
    kinds: &[MeasureKind],
    suffix: &str,
) -> Table {
    let mut table = Table::new(
        format!("fig11{suffix}"),
        format!(
            "Cross-similarity deviation vs sampling rate ({})",
            scenario.name()
        ),
        "rate",
        "deviation",
    );
    let trajectories = scenario.dataset.trajectories();
    let n_pairs = if cfg.full { FULL_PAIRS } else { QUICK_PAIRS };
    // Random distinct pairs (Tra1, Tra2).
    let mut rng = cfg.rng("cross-sim-pairs", 0);
    let pairs: Vec<(usize, usize)> = (0..n_pairs)
        .map(|_| {
            let i = rng.random_range(0..trajectories.len());
            let j = loop {
                let j = rng.random_range(0..trajectories.len());
                if j != i {
                    break j;
                }
            };
            (i, j)
        })
        .collect();
    let corpus: Vec<Trajectory> = trajectories.to_vec();
    for &kind in kinds {
        let measure = make_measure(kind, scenario, &corpus, scenario.scale.grid_size);
        let mut series = Series::new(kind.name());
        for rate in cfg.rates() {
            let mut sum = 0.0;
            let mut count = 0usize;
            for (pi, &(i, j)) in pairs.iter().enumerate() {
                let t1 = &trajectories[i];
                let t2 = &trajectories[j];
                let reference = measure.pair(t1, t2);
                // Eq. 13 is a *relative* deviation: with similarity
                // measures, pairs that share (almost) no
                // spatio-temporal region have reference ≈ 0 and the
                // ratio is meaningless noise. Only pairs with a
                // resolvable reference similarity are evaluated.
                if reference < 1e-6 {
                    continue;
                }
                let mut ds_rng =
                    cfg.rng("cross-sim-down", (pi as u64) << 16 | (rate * 1000.0) as u64);
                let t2_down = downsample_fraction(t2, rate, &mut ds_rng);
                let down = measure.pair(t1, &t2_down);
                if let Some(dev) = cross_similarity_deviation(reference, down) {
                    sum += dev;
                    count += 1;
                }
            }
            let avg = if count == 0 { 0.0 } else { sum / count as f64 };
            series.push(rate, avg);
        }
        table.series.push(series);
    }
    table
}

/// Runs Fig. 11 on both scenarios.
pub fn run(cfg: &ExperimentConfig) -> Vec<Table> {
    cfg.scenarios()
        .iter()
        .zip(["a", "b"])
        .map(|(s, suffix)| run_scenario(cfg, s, MeasureKind::cross_similarity_set(), suffix))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioConfig, ScenarioKind};

    #[test]
    fn deviation_table_shape() {
        let cfg = ExperimentConfig {
            n_objects: 5,
            ..Default::default()
        };
        let s = Scenario::build(ScenarioConfig {
            n_objects: 5,
            ..ScenarioConfig::new(ScenarioKind::Mall)
        });
        let t = run_scenario(&cfg, &s, &[MeasureKind::Wgm], "a");
        assert_eq!(t.id, "fig11a");
        assert_eq!(t.series.len(), 1);
        assert_eq!(t.series[0].points.len(), cfg.rates().len());
        for &(_, dev) in &t.series[0].points {
            assert!(dev >= 0.0 && dev.is_finite());
        }
    }

    #[test]
    fn high_rate_deviation_small_for_smooth_measure() {
        // At rate 0.9 the down-sampled trajectory barely changes; a
        // smooth measure like WGM must deviate little.
        let cfg = ExperimentConfig {
            n_objects: 6,
            ..Default::default()
        };
        let s = Scenario::build(ScenarioConfig {
            n_objects: 6,
            ..ScenarioConfig::new(ScenarioKind::Mall)
        });
        let t = run_scenario(&cfg, &s, &[MeasureKind::Wgm], "a");
        let last = t.series[0].points.last().unwrap();
        assert!(last.1 < 0.5, "deviation at rate 0.9 is {}", last.1);
    }
}
