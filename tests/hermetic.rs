//! Hermeticity guard: the workspace must build with zero external
//! crates (the build environment has no network and no vendored
//! registry). This test walks every `Cargo.toml` in the repository and
//! fails if any dependency section names a crate outside the `sts-*`
//! workspace family — catching a reintroduced `rand`/`proptest`/
//! `criterion`/… at test time instead of at the next offline build.

use std::fs;
use std::path::{Path, PathBuf};

/// All `Cargo.toml` files under the repo root (skipping `target/`).
fn manifest_paths(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir).expect("readable repo dir") {
            let path = entry.expect("readable dir entry").path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if name != "target" && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name == "Cargo.toml" {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Splits a `[section]` header into its dotted segments, honoring
/// quoted segments (`[target.'cfg(unix)'.dependencies]` must not split
/// inside the cfg expression) and stripping the quotes.
fn header_segments(header: &str) -> Vec<String> {
    let mut segments = Vec::new();
    let mut current = String::new();
    let mut quote: Option<char> = None;
    for c in header.chars() {
        match quote {
            Some(q) if c == q => quote = None,
            Some(_) => current.push(c),
            None => match c {
                '\'' | '"' => quote = Some(c),
                '.' => segments.push(std::mem::take(&mut current)),
                _ => current.push(c),
            },
        }
    }
    segments.push(current);
    segments
}

/// Is this header segment a dependency-table keyword?
fn is_dependency_kind(segment: &str) -> bool {
    segment == "dependencies" || segment == "dev-dependencies" || segment == "build-dependencies"
}

/// Dependency names declared in one manifest (line-oriented TOML scan —
/// the workspace's manifests are all in the simple `name = …` /
/// `name.workspace = true` form). Handles both table form
/// (`[dependencies]` with one key per crate) and the dotted-header form
/// (`[dependencies.rand]`), where the header itself names the crate and
/// the keys below are its fields.
fn dependency_names(manifest: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut in_dep_section = false;
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            let header = line.trim_matches(|c| c == '[' || c == ']');
            let segments = header_segments(header);
            in_dep_section = false;
            if let Some(pos) = segments.iter().position(|s| is_dependency_kind(s)) {
                if pos + 1 == segments.len() {
                    // `[dependencies]` / `[workspace.dependencies]` /
                    // `[target.….dependencies]`: keys below are crates.
                    in_dep_section = true;
                } else {
                    // `[dependencies.<name>]`: the header names the
                    // crate; keys below are version/features fields.
                    names.push(segments[pos + 1].clone());
                }
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some(key) = line.split('=').next() else {
            continue;
        };
        // `sts-geo.workspace = true` → `sts-geo`; quoted keys unquoted.
        let name = key.trim().split('.').next().unwrap_or("").trim_matches('"');
        if !name.is_empty() {
            names.push(name.to_string());
        }
    }
    names
}

#[test]
fn all_dependencies_are_workspace_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let manifests = manifest_paths(root);
    assert!(
        manifests.len() >= 12,
        "expected the root + 11 crate manifests, found {}",
        manifests.len()
    );
    assert!(
        manifests
            .iter()
            .any(|p| p.ends_with("crates/obs/Cargo.toml")),
        "the telemetry crate must be covered by this guard"
    );

    let mut offenders = Vec::new();
    for path in &manifests {
        let text = fs::read_to_string(path).expect("readable manifest");
        for dep in dependency_names(&text) {
            if !dep.starts_with("sts-") {
                offenders.push(format!("{}: {dep}", path.display()));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "external dependencies would break the hermetic (offline) build:\n  {}",
        offenders.join("\n  ")
    );
}

#[test]
fn dependency_scanner_catches_external_crates() {
    // The guard itself must not silently pass on the manifest shapes
    // that external crates typically use.
    let manifest = r#"
[package]
name = "demo"

[dependencies]
sts-geo.workspace = true
rand = "0.9"

[dev-dependencies]
proptest = { version = "1", default-features = false }

[target.'cfg(unix)'.dependencies]
libc = "0.2"

[dependencies.serde]
version = "1"
features = ["derive"]

[workspace.dependencies.criterion]
version = "0.5"

[target.'cfg(unix)'.dependencies.nix]
version = "0.29"
"#;
    let deps = dependency_names(manifest);
    assert_eq!(
        deps,
        [
            "sts-geo",
            "rand",
            "proptest",
            "libc",
            "serde",
            "criterion",
            "nix"
        ]
    );
}
