//! Hermeticity guard: the workspace must build with zero external
//! crates (the build environment has no network and no vendored
//! registry). This test walks every `Cargo.toml` in the repository and
//! fails if any dependency section names a crate outside the `sts-*`
//! workspace family — catching a reintroduced `rand`/`proptest`/
//! `criterion`/… at test time instead of at the next offline build.

use std::fs;
use std::path::{Path, PathBuf};

/// All `Cargo.toml` files under the repo root (skipping `target/`).
fn manifest_paths(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir).expect("readable repo dir") {
            let path = entry.expect("readable dir entry").path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if name != "target" && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name == "Cargo.toml" {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Is this `[section]` header one that declares dependencies?
/// Covers `[dependencies]`, `[dev-dependencies]`,
/// `[build-dependencies]`, `[workspace.dependencies]` and
/// target-specific variants like `[target.'cfg(unix)'.dependencies]`.
fn is_dependency_section(header: &str) -> bool {
    header == "dependencies"
        || header == "dev-dependencies"
        || header == "build-dependencies"
        || header == "workspace.dependencies"
        || header.ends_with(".dependencies")
        || header.ends_with(".dev-dependencies")
        || header.ends_with(".build-dependencies")
}

/// Dependency names declared in one manifest (line-oriented TOML scan —
/// the workspace's manifests are all in the simple `name = …` /
/// `name.workspace = true` form).
fn dependency_names(manifest: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut in_dep_section = false;
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            let header = line.trim_matches(|c| c == '[' || c == ']');
            in_dep_section = is_dependency_section(header);
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some(key) = line.split('=').next() else {
            continue;
        };
        // `sts-geo.workspace = true` → `sts-geo`; quoted keys unquoted.
        let name = key.trim().split('.').next().unwrap_or("").trim_matches('"');
        if !name.is_empty() {
            names.push(name.to_string());
        }
    }
    names
}

#[test]
fn all_dependencies_are_workspace_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let manifests = manifest_paths(root);
    assert!(
        manifests.len() >= 12,
        "expected the root + 11 crate manifests, found {}",
        manifests.len()
    );
    assert!(
        manifests
            .iter()
            .any(|p| p.ends_with("crates/obs/Cargo.toml")),
        "the telemetry crate must be covered by this guard"
    );

    let mut offenders = Vec::new();
    for path in &manifests {
        let text = fs::read_to_string(path).expect("readable manifest");
        for dep in dependency_names(&text) {
            if !dep.starts_with("sts-") {
                offenders.push(format!("{}: {dep}", path.display()));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "external dependencies would break the hermetic (offline) build:\n  {}",
        offenders.join("\n  ")
    );
}

#[test]
fn dependency_scanner_catches_external_crates() {
    // The guard itself must not silently pass on the manifest shapes
    // that external crates typically use.
    let manifest = r#"
[package]
name = "demo"

[dependencies]
sts-geo.workspace = true
rand = "0.9"

[dev-dependencies]
proptest = { version = "1", default-features = false }

[target.'cfg(unix)'.dependencies]
libc = "0.2"
"#;
    let deps = dependency_names(manifest);
    assert_eq!(deps, ["sts-geo", "rand", "proptest", "libc"]);
}
