//! The crash suite: end-to-end acceptance tests for process-isolated
//! STS jobs (`ExecMode::Subprocess`) against real worker processes —
//! real aborts, real wedges, real SIGKILLs, real garbage on the pipe.
//!
//! The workload is an 8×8 similarity matrix whose fault plan makes
//! some pairs abort the process, wedge it forever, or corrupt its
//! output frame. In-process execution provably cannot finish this
//! workload (a child process running it dies or hangs); subprocess
//! mode must finish it, quarantining exactly the poison pairs the
//! plan predicts — deterministically across seeds and reruns.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use sts_repro::core::{
    CheckpointConfig, ExecMode, IsolateOptions, JobConfig, JobError, PairOutcome, Sts, StsConfig,
};
use sts_repro::geo::{BoundingBox, Grid, Point};
use sts_repro::rng::{Rng, Xoshiro256pp};
use sts_repro::runtime::{Fault, FaultPlan, JobState, RetryPolicy, WorkerExit};
use sts_repro::traj::Trajectory;

const WORKER: &str = env!("CARGO_BIN_EXE_sts-worker");

fn grid() -> Grid {
    Grid::new(
        BoundingBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
        5.0,
    )
    .unwrap()
}

/// Seeded random walks confined to the grid; all preparable.
fn corpus(seed: u64, n: usize) -> Vec<Trajectory> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut x = rng.random_range(20.0..80.0);
            let mut y = rng.random_range(20.0..80.0);
            let mut t = 0.0;
            let pts: Vec<(f64, f64, f64)> = (0..12)
                .map(|_| {
                    x = (x + rng.random_range(-4.0..4.0)).clamp(0.5, 99.5);
                    y = (y + rng.random_range(-4.0..4.0)).clamp(0.5, 99.5);
                    t += rng.random_range(2.0..8.0);
                    (x, y, t)
                })
                .collect();
            Trajectory::from_xyt(&pts).unwrap()
        })
        .collect()
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 2,
        backoff_base: Duration::from_micros(20),
        backoff_cap: Duration::from_micros(200),
        seed: 0xBAC0FF,
    }
}

/// The crash mix: retryable panics, terminal panics, and the three
/// process killers (abort / wedge / garbage output).
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed: 0x15_0A7E ^ seed,
        transient_per_mille: 30,
        transient_failures: 1,
        persistent_per_mille: 30,
        abort_per_mille: 40,
        wedge_per_mille: 20,
        garbage_per_mille: 30,
        ..FaultPlan::default()
    }
}

fn subprocess_opts() -> IsolateOptions {
    IsolateOptions {
        worker: Some(PathBuf::from(WORKER)),
        hard_timeout: Duration::from_millis(800),
        ..IsolateOptions::default()
    }
}

fn chaos_cfg(seed: u64, ckpt: Option<PathBuf>) -> JobConfig {
    JobConfig {
        retry: fast_retry(),
        chunk_pairs: 8,
        fault: Some(chaos_plan(seed)),
        checkpoint: ckpt.map(|p| CheckpointConfig {
            path: p,
            flush_every_chunks: 1,
        }),
        exec: ExecMode::Subprocess(subprocess_opts()),
        ..JobConfig::default()
    }
}

/// Bit-exact rendering of a matrix for cross-run comparison.
fn matrix_bits(matrix: &[Vec<PairOutcome>]) -> Vec<String> {
    matrix
        .iter()
        .flat_map(|row| row.iter())
        .map(|cell| match cell {
            PairOutcome::Score(s) => format!("s:{:016x}", s.to_bits()),
            PairOutcome::Quarantined => "q".into(),
            PairOutcome::Panicked => "p".into(),
            PairOutcome::Failed { attempts } => format!("f:{attempts}"),
            PairOutcome::Skipped => "k".into(),
            PairOutcome::Poisoned { exit } => format!("x:{exit}"),
        })
        .collect()
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("sts-isolation-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The tentpole acceptance test: the chaos matrix completes in
/// subprocess mode with *exactly* the plan's process-killing pairs
/// quarantined — each attributed to how its worker died — and every
/// other cell resolved, across seeds.
#[test]
fn subprocess_chaos_quarantines_exactly_the_poison_pairs() {
    for seed in [1u64, 2] {
        let trajs = corpus(0xC0FE ^ seed, 16);
        let (queries, candidates) = trajs.split_at(8);
        let plan = chaos_plan(seed);
        let expected_poison = plan.process_killing_pairs(64);
        let expected_failed = plan.persistent_pairs(64);
        assert!(
            !expected_poison.is_empty(),
            "seed {seed}: the plan must actually kill workers"
        );

        let sts = Sts::new(StsConfig::default(), grid());
        let (matrix, report) = sts
            .similarity_matrix_supervised(queries, candidates, &chaos_cfg(seed, None))
            .unwrap();

        assert_eq!(report.stats.state, JobState::Degraded, "seed {seed}");
        assert_eq!(
            report.stats.pairs_skipped, 0,
            "seed {seed}: matrix must finish"
        );
        assert_eq!(report.stats.pairs_total, 64);

        // The quarantine list names exactly the predicted pairs, each
        // with the exit its fault causes.
        let poisoned: BTreeMap<usize, WorkerExit> = report
            .batch
            .poisoned_pairs
            .iter()
            .map(|&(i, j, exit)| (i * 8 + j, exit))
            .collect();
        let lins: Vec<usize> = poisoned.keys().copied().collect();
        assert_eq!(lins, expected_poison, "seed {seed}: poison set");
        for (&lin, &exit) in &poisoned {
            match plan.fault_for(lin) {
                Fault::Abort => {
                    assert!(matches!(exit, WorkerExit::Signal(_) | WorkerExit::Code(_)))
                }
                Fault::Wedge => assert_eq!(exit, WorkerExit::HardTimeout),
                Fault::GarbageOutput => assert_eq!(exit, WorkerExit::Protocol),
                f => panic!("seed {seed}: pair {lin} poisoned but fault is {f:?}"),
            }
        }

        // Every other cell resolved: persistent faults as Failed, the
        // rest as finite scores.
        for (lin, cell) in matrix.iter().flat_map(|r| r.iter()).enumerate() {
            match cell {
                PairOutcome::Score(s) => assert!(s.is_finite(), "pair {lin}"),
                PairOutcome::Failed { attempts } => {
                    assert!(
                        expected_failed.contains(&lin),
                        "pair {lin} failed unpredicted"
                    );
                    assert_eq!(*attempts, 3, "pair {lin}: retries run in-worker");
                }
                PairOutcome::Poisoned { .. } => {
                    assert!(
                        expected_poison.contains(&lin),
                        "pair {lin} poisoned unpredicted"
                    )
                }
                other => panic!("seed {seed}: pair {lin} unresolved: {other:?}"),
            }
        }

        let iso = report
            .stats
            .isolate
            .expect("subprocess job reports isolate stats");
        assert!(iso.workers_spawned > 0);
        assert_eq!(iso.pairs_poisoned as usize, expected_poison.len());

        // Rerun: byte-identical outcome.
        let (again, report2) = sts
            .similarity_matrix_supervised(queries, candidates, &chaos_cfg(seed, None))
            .unwrap();
        assert_eq!(matrix_bits(&matrix), matrix_bits(&again), "seed {seed}");
        assert_eq!(report.batch.poisoned_pairs, report2.batch.poisoned_pairs);
    }
}

/// The same workload is unsurvivable in-process: a child process
/// running it either dies abnormally (abort pair) or wedges until we
/// lose patience and kill it. It must never finish cleanly.
#[test]
fn in_process_mode_cannot_survive_the_chaos_plan() {
    let mut child = Command::new(WORKER)
        .args(["chaos", "in-process", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        match child.try_wait().unwrap() {
            Some(status) => {
                assert!(
                    !status.success(),
                    "in-process chaos run finished cleanly: {status:?}"
                );
                return;
            }
            None if Instant::now() >= deadline => {
                // Wedged — the other unsurvivable outcome.
                child.kill().unwrap();
                child.wait().unwrap();
                return;
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// With no faults, subprocess mode is a pure transport: bit-identical
/// scores to the in-process path, state Complete in both.
#[test]
fn subprocess_matches_in_process_bit_for_bit_on_a_clean_run() {
    let trajs = corpus(0xB17_E4AC7, 12);
    let (queries, candidates) = trajs.split_at(6);
    let sts = Sts::new(StsConfig::default(), grid());

    let base = JobConfig {
        retry: fast_retry(),
        chunk_pairs: 5,
        ..JobConfig::default()
    };
    let (inproc, r1) = sts
        .similarity_matrix_supervised(queries, candidates, &base)
        .unwrap();
    let sub = JobConfig {
        exec: ExecMode::Subprocess(subprocess_opts()),
        ..base
    };
    let (subproc, r2) = sts
        .similarity_matrix_supervised(queries, candidates, &sub)
        .unwrap();

    assert_eq!(r1.stats.state, JobState::Complete);
    assert_eq!(r2.stats.state, JobState::Complete);
    assert_eq!(matrix_bits(&inproc), matrix_bits(&subproc));
    assert!(r2.stats.isolate.is_some());
    assert!(r1.stats.isolate.is_none());
}

/// A completed (degraded) subprocess job checkpoints its poison cells;
/// resuming it replays the whole matrix from the checkpoint — no
/// workers spawned, no pair re-killed.
#[test]
fn subprocess_resume_replays_poison_without_respawning() {
    let tmp = TempDir::new("resume");
    let ckpt = tmp.path("chaos.ckpt");
    let trajs = corpus(0xC0FE ^ 1, 16);
    let (queries, candidates) = trajs.split_at(8);
    let sts = Sts::new(StsConfig::default(), grid());

    let cfg = chaos_cfg(1, Some(ckpt.clone()));
    let (first, r1) = sts
        .similarity_matrix_supervised(queries, candidates, &cfg)
        .unwrap();
    assert_eq!(r1.stats.state, JobState::Degraded);
    assert!(r1.stats.isolate.unwrap().workers_spawned > 0);

    let (second, r2) = sts
        .similarity_matrix_supervised(queries, candidates, &cfg)
        .unwrap();
    assert_eq!(
        r2.stats.pairs_resumed, 64,
        "everything comes from the checkpoint"
    );
    let iso = r2.stats.isolate.expect("still a subprocess job");
    assert_eq!(iso.workers_spawned, 0, "no work left, no workers");
    assert_eq!(iso.worker_kills, 0, "poison must not be rediscovered");
    assert_eq!(matrix_bits(&first), matrix_bits(&second));
    assert_eq!(r1.batch.poisoned_pairs, r2.batch.poisoned_pairs);
}

/// Satellite: SIGKILL a checkpointing job mid-run (a real process
/// death between flushes), resume it, and require the final matrix to
/// be byte-identical to an uninterrupted run — across 8 seeds.
#[test]
fn sigkill_resume_is_byte_identical_across_seeds() {
    let tmp = TempDir::new("sigkill");
    let mut killed_mid_run = 0;
    for seed in 0u64..8 {
        let ckpt = tmp.path(&format!("drive-{seed}.ckpt"));
        let out = tmp.path(&format!("drive-{seed}.out"));
        let reference = tmp.path(&format!("drive-{seed}.ref"));

        // Uninterrupted reference run (its own checkpoint path).
        let status = Command::new(WORKER)
            .arg("drive")
            .arg(tmp.path(&format!("drive-{seed}.refckpt")))
            .arg(seed.to_string())
            .arg(&reference)
            .status()
            .unwrap();
        assert!(status.success(), "seed {seed}: reference run failed");

        // Victim run: SIGKILLed somewhere between checkpoint flushes.
        let mut child = Command::new(WORKER)
            .arg("drive")
            .arg(&ckpt)
            .arg(seed.to_string())
            .arg(&out)
            .spawn()
            .unwrap();
        std::thread::sleep(Duration::from_millis(40 + seed * 9));
        match child.try_wait().unwrap() {
            Some(status) => assert!(status.success(), "seed {seed}: early exit failed"),
            None => {
                child.kill().unwrap(); // SIGKILL: no cleanup, no final flush
                child.wait().unwrap();
                killed_mid_run += 1;
            }
        }

        // Resume to completion and compare bytes.
        let status = Command::new(WORKER)
            .arg("drive")
            .arg(&ckpt)
            .arg(seed.to_string())
            .arg(&out)
            .status()
            .unwrap();
        assert!(status.success(), "seed {seed}: resume failed");
        assert_eq!(
            std::fs::read(&out).unwrap(),
            std::fs::read(&reference).unwrap(),
            "seed {seed}: resumed matrix differs from uninterrupted run"
        );
    }
    assert!(
        killed_mid_run >= 1,
        "no run was actually killed mid-flight; slow the drive workload down"
    );
}

/// A subprocess job with a bogus worker path fails with a typed error
/// before touching any pair.
#[test]
fn missing_worker_binary_is_a_typed_error() {
    let trajs = corpus(7, 4);
    let (queries, candidates) = trajs.split_at(2);
    let cfg = JobConfig {
        exec: ExecMode::Subprocess(IsolateOptions {
            worker: Some(PathBuf::from("/nonexistent/sts-worker")),
            ..IsolateOptions::default()
        }),
        ..JobConfig::default()
    };
    let sts = Sts::new(StsConfig::default(), grid());
    match sts.similarity_matrix_supervised(queries, candidates, &cfg) {
        Err(JobError::WorkerMissing { path }) => {
            assert_eq!(path, PathBuf::from("/nonexistent/sts-worker"))
        }
        other => panic!("expected WorkerMissing, got {other:?}"),
    }
}
