//! Integration tests pinning the implementation to the paper's
//! equations, exercised through the public umbrella API.

use sts_repro::core::noise::{GaussianNoise, NoiseModel};
use sts_repro::core::transition::{SpeedKdeTransition, TransitionModel};
use sts_repro::core::{colocation_probability, StpEstimator, Sts, StsConfig};
use sts_repro::geo::{BoundingBox, Grid, Point};
use sts_repro::stats::{Kde, Kernel};
use sts_repro::traj::Trajectory;

fn grid() -> Grid {
    Grid::new(
        BoundingBox::new(Point::ORIGIN, Point::new(100.0, 40.0)),
        2.0,
    )
    .unwrap()
}

/// Eq. 3: the Gaussian location-noise weight over cells is
/// `exp(−dis(ℓ, r)²/2σ²)` up to the normalization that Algorithm 1
/// applies anyway.
#[test]
fn eq3_gaussian_noise_weights() {
    let g = grid();
    let sigma = 3.0;
    let noise = GaussianNoise::new(sigma);
    let obs = Point::new(51.0, 21.0); // a cell center
    let w = noise.weights(&g, obs);
    // Ratio check between two cells removes the normalization constant.
    let own = g.cell_at(obs).unwrap();
    let neighbor = g.cell_at(Point::new(55.0, 21.0)).unwrap();
    let d_own = g.center(own).distance(&obs);
    let d_nb = g.center(neighbor).distance(&obs);
    let expected_ratio = (-(d_nb * d_nb) / (2.0 * sigma * sigma)).exp()
        / (-(d_own * d_own) / (2.0 * sigma * sigma)).exp();
    let got_ratio = w.get(neighbor) / w.get(own);
    assert!(
        (got_ratio - expected_ratio).abs() < 1e-9,
        "Eq. 3 ratio mismatch: {got_ratio} vs {expected_ratio}"
    );
}

/// Eq. 6–7: the transition probability is the bandwidth-scaled KDE of
/// the trajectory's own speed samples, evaluated at
/// `v = dis(ℓ, ℓ′)/|t−t′|`, with Silverman's bandwidth.
#[test]
fn eq7_transition_is_scaled_kde_of_own_speeds() {
    let traj = Trajectory::from_xyt(&[
        (0.0, 0.0, 0.0),
        (2.0, 0.0, 1.0),
        (3.0, 0.0, 2.0),
        (5.5, 0.0, 3.0),
    ])
    .unwrap();
    let samples = traj.speed_samples();
    assert_eq!(samples, vec![2.0, 1.0, 2.5]);
    let kde = Kde::new(samples.clone(), Kernel::Gaussian).unwrap();
    // Silverman's rule as printed in the paper.
    let sigma = {
        let m = samples.iter().sum::<f64>() / samples.len() as f64;
        (samples.iter().map(|s| (s - m) * (s - m)).sum::<f64>() / samples.len() as f64).sqrt()
    };
    let h = (4.0 * sigma.powi(5) / (3.0 * samples.len() as f64)).powf(0.2);
    assert!((kde.bandwidth() - h).abs() < 1e-12, "Silverman bandwidth");

    // No position-uncertainty correction: the transition must equal the
    // paper's Eq. 7 exactly.
    let model = SpeedKdeTransition::from_trajectory(&traj, Kernel::Gaussian).unwrap();
    let from = Point::new(10.0, 5.0);
    let to = Point::new(13.0, 9.0); // 5 m away
    let dt = 2.5;
    let v = 2.0; // 5 m / 2.5 s
    let manual: f64 = samples
        .iter()
        .map(|s| Kernel::Gaussian.evaluate((v - s) / h))
        .sum::<f64>()
        / samples.len() as f64;
    let got = model.probability(from, to, dt);
    assert!((got - manual).abs() < 1e-12, "Eq. 7: {got} vs {manual}");
}

/// Eq. 10: STS is the average co-location probability over the merged
/// timestamps of the two trajectories.
#[test]
fn eq10_sts_is_average_colocation() {
    let g = grid();
    let config = StsConfig {
        noise_sigma: 2.0,
        ..StsConfig::default()
    };
    let a = Trajectory::from_xyt(&[
        (10.0, 20.0, 0.0),
        (20.0, 20.0, 10.0),
        (30.0, 20.0, 20.0),
        (40.0, 20.0, 30.0),
    ])
    .unwrap();
    let b =
        Trajectory::from_xyt(&[(12.0, 21.0, 3.0), (23.0, 19.0, 13.0), (33.0, 20.0, 23.0)]).unwrap();
    let sts = Sts::new(config.clone(), g.clone());
    let got = sts.similarity(&a, &b).unwrap();

    // Manual Eq. 10 with independently constructed estimators.
    let noise = GaussianNoise::new(2.0);
    let cell_half = g.cell_size() / 2.0;
    let ta = SpeedKdeTransition::from_trajectory(&a, Kernel::Gaussian)
        .unwrap()
        .with_position_uncertainty(cell_half);
    let tb = SpeedKdeTransition::from_trajectory(&b, Kernel::Gaussian)
        .unwrap()
        .with_position_uncertainty(cell_half);
    let ea = StpEstimator::new(&g, &noise, &ta, &a);
    let eb = StpEstimator::new(&g, &noise, &tb, &b);
    let ts = a.merged_timestamps(&b);
    let manual: f64 = ts
        .iter()
        .map(|&t| colocation_probability(&ea, &eb, t))
        .sum::<f64>()
        / ts.len() as f64;
    assert!(
        (got - manual).abs() < 1e-9,
        "Eq. 10 mismatch: {got} vs {manual}"
    );
}

/// Eq. 5's zero case: timestamps outside a trajectory's span contribute
/// zero co-location, pulling the average down for partially overlapping
/// trajectories.
#[test]
fn eq5_outside_span_counts_as_zero_in_average() {
    let g = grid();
    let sts = Sts::new(
        StsConfig {
            noise_sigma: 2.0,
            ..StsConfig::default()
        },
        g,
    );
    let a =
        Trajectory::from_xyt(&[(10.0, 20.0, 0.0), (20.0, 20.0, 10.0), (30.0, 20.0, 20.0)]).unwrap();
    // Same motion, but extending far past a's span.
    let overlap =
        Trajectory::from_xyt(&[(10.0, 20.0, 0.0), (20.0, 20.0, 10.0), (30.0, 20.0, 20.0)]).unwrap();
    let extended = Trajectory::from_xyt(&[
        (10.0, 20.0, 0.0),
        (20.0, 20.0, 10.0),
        (30.0, 20.0, 20.0),
        (40.0, 20.0, 200.0),
        (50.0, 20.0, 400.0),
    ])
    .unwrap();
    let s_full = sts.similarity(&a, &overlap).unwrap();
    let s_ext = sts.similarity(&a, &extended).unwrap();
    assert!(
        s_ext < s_full,
        "non-overlapping timestamps must dilute the average: {s_ext} vs {s_full}"
    );
}
