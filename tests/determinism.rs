//! Seed-determinism of the synthetic workload generators: the whole
//! workload is a pure function of its config. Two runs with the same
//! seed must be *byte-identical* (every coordinate and timestamp
//! compared via `f64::to_bits`, so even sign-of-zero or last-ulp drift
//! fails); different seeds must differ.

use sts_repro::rng::Xoshiro256pp;
use sts_repro::traj::generators::{cdr, mall, taxi};
use sts_repro::traj::{Path, TrajPoint, Trajectory};

/// Every observation of every trajectory, as raw bit patterns.
fn fingerprint(trajectories: &[Trajectory]) -> Vec<(u64, u64, u64)> {
    trajectories
        .iter()
        .flat_map(|t| t.points())
        .map(|p| (p.loc.x.to_bits(), p.loc.y.to_bits(), p.t.to_bits()))
        .collect()
}

fn taxi_dataset(seed: u64) -> Vec<Trajectory> {
    let config = taxi::TaxiConfig {
        n_taxis: 4,
        seed,
        ..taxi::TaxiConfig::default()
    };
    taxi::generate(&config)
        .objects
        .into_iter()
        .map(|o| o.trajectory)
        .collect()
}

fn mall_dataset(seed: u64) -> Vec<Trajectory> {
    let config = mall::MallConfig {
        n_pedestrians: 4,
        seed,
        ..mall::MallConfig::default()
    };
    mall::generate(&config)
        .objects
        .into_iter()
        .map(|o| o.trajectory)
        .collect()
}

fn cdr_dataset(seed: u64) -> Vec<Trajectory> {
    let path = Path::new(vec![
        TrajPoint::from_xy(0.0, 0.0, 0.0),
        TrajPoint::from_xy(5_000.0, 1_000.0, 5_000.0),
    ])
    .unwrap();
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..4)
        .map(|_| cdr::sample_path_cdr(&path, &cdr::CdrConfig::default(), &mut rng))
        .collect()
}

fn assert_seed_deterministic(name: &str, gen: impl Fn(u64) -> Vec<Trajectory>) {
    let a = fingerprint(&gen(42));
    let b = fingerprint(&gen(42));
    assert!(!a.is_empty(), "{name}: generated nothing");
    assert_eq!(a, b, "{name}: same seed must be byte-identical");

    let c = fingerprint(&gen(43));
    assert_ne!(a, c, "{name}: different seeds must differ");
}

#[test]
fn taxi_generator_is_seed_deterministic() {
    assert_seed_deterministic("taxi", taxi_dataset);
}

#[test]
fn mall_generator_is_seed_deterministic() {
    assert_seed_deterministic("mall", mall_dataset);
}

#[test]
fn cdr_generator_is_seed_deterministic() {
    assert_seed_deterministic("cdr", cdr_dataset);
}
