//! Crash suite for the sharded tile coordinator with *real* worker
//! processes: `sts-worker serve-tcp` children are SIGKILLed mid-tile
//! and the job must re-lease, recover and finish byte-identically —
//! no cell lost, no cell committed twice. The in-thread network-chaos
//! battery lives in `crates/robust/tests/net_chaos.rs`; this suite
//! covers the process boundary it elides.

use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use sts_core::{
    ExecMode, JobConfig, PairOutcome, ShardOptions, Sts, StsConfig, TileConfig, WorkerHandle,
    WorkerLauncher,
};
use sts_geo::{BoundingBox, Grid, Point};
use sts_rng::{Rng, Xoshiro256pp};
use sts_runtime::FaultPlan;
use sts_traj::Trajectory;

const WORKER: &str = env!("CARGO_BIN_EXE_sts-worker");
const N_TRAJECTORIES: usize = 12;
const TILE_PAIRS: usize = 16;
const N_TILES: usize = N_TRAJECTORIES * N_TRAJECTORIES / TILE_PAIRS;

fn grid() -> Grid {
    Grid::new(
        BoundingBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
        5.0,
    )
    .unwrap()
}

/// Seeded random walks confined to the grid (the same corpus shape the
/// other crash suites use).
fn corpus(seed: u64, n: usize) -> Vec<Trajectory> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut x = rng.random_range(20.0..80.0);
            let mut y = rng.random_range(20.0..80.0);
            let mut t = 0.0;
            let pts: Vec<(f64, f64, f64)> = (0..8)
                .map(|_| {
                    x = (x + rng.random_range(-4.0..4.0)).clamp(0.5, 99.5);
                    y = (y + rng.random_range(-4.0..4.0)).clamp(0.5, 99.5);
                    t += rng.random_range(2.0..8.0);
                    (x, y, t)
                })
                .collect();
            Trajectory::from_xyt(&pts).unwrap()
        })
        .collect()
}

fn outcome_bits(cell: &PairOutcome) -> (u8, u64) {
    match cell {
        PairOutcome::Score(s) => (0, s.to_bits()),
        PairOutcome::Quarantined => (1, 0),
        PairOutcome::Panicked => (2, 0),
        PairOutcome::Failed { attempts } => (3, *attempts as u64),
        PairOutcome::Skipped => (4, 0),
        PairOutcome::Poisoned { .. } => (5, 0),
    }
}

fn matrix_bits(matrix: &[Vec<PairOutcome>]) -> Vec<Vec<(u8, u64)>> {
    matrix
        .iter()
        .map(|row| row.iter().map(outcome_bits).collect())
        .collect()
}

/// RAII tile directory under the system tmp dir.
struct TempTiles(PathBuf);

impl TempTiles {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("sts-shard-crash-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempTiles(dir)
    }
}

impl Drop for TempTiles {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Spawns real `sts-worker serve-tcp` children and shares their PIDs
/// so the test can SIGKILL one from outside while the coordinator
/// believes it healthy.
struct PidTrackingLauncher {
    pids: Arc<Mutex<Vec<u32>>>,
}

struct PidHandle {
    child: Child,
}

impl WorkerHandle for PidHandle {
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl WorkerLauncher for PidTrackingLauncher {
    fn launch(&self, addr: SocketAddr) -> io::Result<Box<dyn WorkerHandle>> {
        let child = Command::new(WORKER)
            .arg("serve-tcp")
            .arg(addr.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()?;
        self.pids.lock().unwrap().push(child.id());
        Ok(Box::new(PidHandle { child }))
    }
}

/// A launcher that can never produce a worker: the fleet-exhaustion
/// path, end to end.
struct NoWorkers;

impl WorkerLauncher for NoWorkers {
    fn launch(&self, _addr: SocketAddr) -> io::Result<Box<dyn WorkerHandle>> {
        Err(io::Error::other("the datacenter is on fire"))
    }
}

/// SIGKILL, not `Child::kill` — the coordinator must see the death the
/// way it sees any remote worker death: an unannounced EOF.
fn sigkill(pid: u32) {
    let _ = Command::new("kill").arg("-9").arg(pid.to_string()).status();
}

/// The acceptance criterion: a real worker process SIGKILLed mid-tile
/// costs a lease and a respawn, never a cell. The finished matrix is
/// byte-identical to an in-process run — nothing lost to the dead
/// worker's tile, nothing committed twice by its replacement.
#[test]
fn sigkill_mid_tile_re_leases_and_finishes_byte_identical() {
    let sts = Sts::new(StsConfig::default(), grid());
    let trajs = corpus(0x51C_61FF, N_TRAJECTORIES * 2);
    let (queries, candidates) = trajs.split_at(N_TRAJECTORIES);

    // ~2 ms per pair gives each 16-pair tile a ~30 ms compute window —
    // wide enough that a kill 120 ms in lands mid-tile, short enough
    // for CI.
    let slow = FaultPlan {
        seed: 7,
        slow_per_mille: 1000,
        slow_for: Duration::from_millis(2),
        ..FaultPlan::default()
    };
    let cfg_ref = JobConfig {
        fault: Some(slow.clone()),
        ..JobConfig::default()
    };
    let (reference, ref_report) = sts
        .similarity_matrix_supervised(queries, candidates, &cfg_ref)
        .unwrap();
    assert!(ref_report.is_complete(), "{ref_report}");

    let pids = Arc::new(Mutex::new(Vec::new()));
    let tiles = TempTiles::new("sigkill");
    let cfg = JobConfig {
        fault: Some(slow),
        exec: ExecMode::Sharded(ShardOptions {
            workers: 2,
            lease_timeout: Duration::from_millis(600),
            ready_timeout: Duration::from_secs(10),
            hb_every: 2,
            restart_budget: 8,
            backoff_base: Duration::from_micros(100),
            backoff_cap: Duration::from_millis(2),
            launcher: Some(Arc::new(PidTrackingLauncher { pids: pids.clone() })),
            ..ShardOptions::default()
        }),
        ..JobConfig::default()
    };
    let tiling = TileConfig {
        tile_pairs: TILE_PAIRS,
        ..TileConfig::new(&tiles.0)
    };

    // The assassin: wait for the fleet to be mid-job, then SIGKILL the
    // first worker that was spawned.
    let killer = {
        let pids = pids.clone();
        std::thread::spawn(move || {
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            loop {
                if let Some(&pid) = pids.lock().unwrap().first() {
                    std::thread::sleep(Duration::from_millis(120));
                    sigkill(pid);
                    return true;
                }
                if std::time::Instant::now() > deadline {
                    return false;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    let (sharded, report) = sts
        .similarity_matrix_tiled(queries, candidates, &cfg, &tiling)
        .unwrap();
    assert!(killer.join().unwrap(), "no worker was ever spawned to kill");
    assert!(report.is_complete(), "{report}");
    assert_eq!(
        matrix_bits(&sharded),
        matrix_bits(&reference),
        "matrix after mid-tile SIGKILL differs from in-process run"
    );

    let shard = report.stats.shard.expect("sharded job reports ShardStats");
    assert!(
        shard.leases_expired >= 1 || shard.worker_restarts >= 1,
        "the SIGKILL left no trace in recovery accounting ({shard:?})"
    );
    assert!(
        shard.workers_spawned >= 2,
        "the dead worker was never replaced ({shard:?})"
    );
    // Lease conservation doubles as the no-double-commit check: every
    // granted lease either committed its tile exactly once on the
    // fleet or expired.
    assert_eq!(
        shard.tiles_leased,
        (N_TILES - shard.tiles_local_fallback) + shard.leases_expired,
        "lease ledger does not conserve ({shard:?})"
    );
}

/// When no worker can be launched at all, the job does not fail — it
/// burns the restart budget, retires the fleet and computes every tile
/// locally, byte-identical to a healthy run.
#[test]
fn exhausted_fleet_degrades_to_local_compute() {
    let sts = Sts::new(StsConfig::default(), grid());
    let trajs = corpus(0xDEAD_F1EE7, N_TRAJECTORIES * 2);
    let (queries, candidates) = trajs.split_at(N_TRAJECTORIES);

    let cfg_ref = JobConfig::default();
    let (reference, _) = sts
        .similarity_matrix_supervised(queries, candidates, &cfg_ref)
        .unwrap();

    let tiles = TempTiles::new("exhausted");
    let cfg = JobConfig {
        exec: ExecMode::Sharded(ShardOptions {
            workers: 2,
            restart_budget: 3,
            backoff_base: Duration::from_micros(50),
            backoff_cap: Duration::from_micros(500),
            launcher: Some(Arc::new(NoWorkers)),
            ..ShardOptions::default()
        }),
        ..JobConfig::default()
    };
    let tiling = TileConfig {
        tile_pairs: TILE_PAIRS,
        ..TileConfig::new(&tiles.0)
    };
    let (sharded, report) = sts
        .similarity_matrix_tiled(queries, candidates, &cfg, &tiling)
        .unwrap();
    assert!(report.is_complete(), "{report}");
    assert_eq!(
        matrix_bits(&sharded),
        matrix_bits(&reference),
        "locally-degraded sharded matrix differs from in-process run"
    );
    let shard = report.stats.shard.expect("sharded job reports ShardStats");
    assert_eq!(
        shard.tiles_local_fallback, N_TILES,
        "every tile must degrade to local compute ({shard:?})"
    );
    assert_eq!(shard.workers_spawned, 0, "no launch ever succeeded");
    assert_eq!(
        shard.worker_restarts, 3,
        "the whole restart budget must be consumed before retiring ({shard:?})"
    );
}
