//! Property-based invariants of the STS measure and its substrates,
//! exercised through the public umbrella API on the in-repo
//! `sts_rng::check` harness (fixed seeds, 24 cases per property — the
//! same budget the proptest version used).

use sts_repro::core::{Sts, StsConfig};
use sts_repro::geo::{BoundingBox, Grid, Point};
use sts_repro::rng::check::{self, Checker, Strategy};
use sts_repro::rng::Xoshiro256pp;
use sts_repro::stats::{Kde, Kernel};
use sts_repro::traj::{sampling, TrajPoint, Trajectory};
use sts_repro::{prop_assert, prop_assert_eq};

const CASES: u32 = 24;

fn checker(seed: u64) -> Checker {
    Checker::new().cases(CASES).seed(seed)
}

fn grid() -> Grid {
    Grid::new(
        BoundingBox::new(Point::ORIGIN, Point::new(120.0, 120.0)),
        4.0,
    )
    .unwrap()
}

fn sts() -> Sts {
    Sts::new(
        StsConfig {
            noise_sigma: 3.0,
            ..StsConfig::default()
        },
        grid(),
    )
}

/// Strategy: a random trajectory of 2–8 points inside the grid with
/// strictly increasing timestamps and bounded speeds.
fn trajectory() -> impl Strategy<Value = Trajectory> {
    check::map(
        (
            2usize..8,
            0.0f64..50.0,
            0.0f64..100.0,
            0.0f64..100.0,
            check::vec_of((0.5f64..15.0, -5.0f64..5.0, -5.0f64..5.0), 7..=7),
        ),
        |(n, t0, x0, y0, steps)| {
            let mut pts = vec![TrajPoint::from_xy(x0, y0, t0)];
            for &(dt, dx, dy) in steps.iter().take(n - 1) {
                let last = *pts.last().unwrap();
                pts.push(TrajPoint::from_xy(
                    (last.loc.x + dx).clamp(0.0, 119.0),
                    (last.loc.y + dy).clamp(0.0, 119.0),
                    last.t + dt,
                ));
            }
            Trajectory::new(pts).expect("constructed valid")
        },
    )
}

/// STS is symmetric and bounded in [0, 1].
#[test]
fn sts_symmetric_and_bounded() {
    checker(0xA001).run((trajectory(), trajectory()), |(a, b)| {
        let sts = sts();
        let ab = sts.similarity(&a, &b).unwrap();
        let ba = sts.similarity(&b, &a).unwrap();
        prop_assert!((ab - ba).abs() < 1e-9, "asymmetric: {ab} vs {ba}");
        prop_assert!((0.0..=1.0 + 1e-9).contains(&ab), "out of range: {ab}");
        Ok(())
    });
}

/// Self-similarity is at least the similarity to anything else that
/// shares the same timestamps (a cannot overlap b more than itself).
#[test]
fn self_similarity_dominates_time_shifted_copies() {
    checker(0xA002).run(trajectory(), |a| {
        let sts = sts();
        let s_self = sts.similarity(&a, &a).unwrap();
        // A displaced copy (same times, shifted 30 m).
        let shifted = Trajectory::new(
            a.points()
                .iter()
                .map(|p| TrajPoint::from_xy((p.loc.x + 30.0).min(119.0), p.loc.y, p.t))
                .collect(),
        )
        .unwrap();
        let s_shift = sts.similarity(&a, &shifted).unwrap();
        prop_assert!(s_self >= s_shift - 1e-9, "{s_self} < {s_shift}");
        Ok(())
    });
}

/// The alternate split halves of one trajectory recombine to the
/// original timestamps (Fig. 3 invariant).
#[test]
fn alternate_split_partitions_timestamps() {
    checker(0xA003).run(trajectory(), |a| {
        if let Some((h1, h2)) = sampling::alternate_split(&a) {
            let merged = h1.merged_timestamps(&h2);
            let original: Vec<f64> = a.timestamps().collect();
            prop_assert_eq!(merged, original);
        }
        Ok(())
    });
}

/// Down-sampling never invents points: every sampled point exists in
/// the original.
#[test]
fn downsample_is_a_subsequence() {
    checker(0xA004).run((trajectory(), 0u64..1000), |(a, seed)| {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let d = sampling::downsample_fraction(&a, 0.5, &mut rng);
        for p in d.points() {
            prop_assert!(a.points().iter().any(|q| q.t == p.t && q.loc == p.loc));
        }
        Ok(())
    });
}

/// KDE densities are non-negative everywhere and the scaled density
/// never exceeds the kernel peak (the transition-probability bound).
#[test]
fn kde_bounds() {
    checker(0xA005).run(
        (check::vec_of(0.1f64..30.0, 1..=19), -10.0f64..50.0),
        |(samples, x)| {
            let kde = Kde::new(samples, Kernel::Gaussian).unwrap();
            let d = kde.density(x);
            prop_assert!(d >= 0.0);
            prop_assert!(kde.scaled_density(x) <= Kernel::Gaussian.evaluate(0.0) + 1e-12);
            Ok(())
        },
    );
}

/// Grid lookup is consistent: every in-area point maps to a cell
/// whose center is within half a cell diagonal.
#[test]
fn grid_cell_lookup_consistent() {
    checker(0xA006).run((0.0f64..119.9, 0.0f64..119.9), |(x, y)| {
        let g = grid();
        let p = Point::new(x, y);
        let cell = g.cell_at(p).expect("inside the grid");
        let half_diag = g.cell_size() * std::f64::consts::SQRT_2 / 2.0;
        prop_assert!(g.center(cell).distance(&p) <= half_diag + 1e-9);
        Ok(())
    });
}

/// Shrinking regression: the harness minimizes a known failing input to
/// its exact boundary. This is the guarantee that future property
/// failures report the smallest counterexample, not the first random
/// one.
#[test]
fn harness_shrinks_known_failure_to_minimum() {
    let err = std::panic::catch_unwind(|| {
        Checker::new()
            .cases(CASES)
            .seed(0xA007)
            .run(0i64..1000, |x| {
                prop_assert!(x < 50, "x = {x} crossed the boundary");
                Ok(())
            });
    })
    .expect_err("the x < 50 property must fail over 0..1000");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .expect("panic payload is a formatted report");
    assert!(msg.contains("minimal input: 50"), "unshrunk report: {msg}");
    assert!(
        msg.contains("seed 0xa007"),
        "seed missing from report: {msg}"
    );
}
