//! Golden-value tests for the paper's closed-form pieces, checked
//! against hand-computed constants (the derivations are spelled out
//! inline). These pin the *numbers*, not just the invariants: any
//! change to the bandwidth rule, the scaled-density form or the STP
//! normalization shows up as a numeric diff here.

use sts_repro::core::noise::GaussianNoise;
use sts_repro::core::transition::{SpeedKdeTransition, TransitionModel};
use sts_repro::core::StpEstimator;
use sts_repro::geo::{BoundingBox, Grid, Point};
use sts_repro::stats::{Kde, Kernel};
use sts_repro::traj::Trajectory;

/// Eq. 6 — Silverman's rule `h = (4σ̂⁵ / (3|S|))^{1/5}`.
///
/// For S = {1, 2, 3, 4, 5}: mean 3, population variance
/// (4+1+0+1+4)/5 = 2, so σ̂ = √2 and
/// h = (4·2^{5/2} / 15)^{1/5} = 1.085697266241067.
#[test]
fn silverman_bandwidth_golden() {
    let samples = [1.0, 2.0, 3.0, 4.0, 5.0];
    let h = Kde::silverman_bandwidth(&samples).unwrap();
    assert!((h - 1.085697266241067).abs() < 1e-12, "h = {h}");
}

/// Eq. 6 degenerate case: identical samples have σ̂ = 0, which the
/// implementation floors at `Kde::BANDWIDTH_FLOOR` instead of a
/// zero-width (Dirac) bandwidth.
#[test]
fn silverman_bandwidth_floors_at_zero_variance() {
    let h = Kde::silverman_bandwidth(&[2.5, 2.5, 2.5]).unwrap();
    assert_eq!(h, Kde::BANDWIDTH_FLOOR);
}

/// Eq. 7 — the transition probability is the bandwidth-scaled density
/// `h·Q̂(v)` at the implied speed `v = dis(ℓ, ℓ') / |t − t'|`.
///
/// Speed samples S = {1, 2, 3}: population variance 2/3, σ̂ = √(2/3),
/// h = (4σ̂⁵/9)^{1/5} = 0.6942531626616071. At `from = (0,0)`,
/// `to = (10,0)`, `dt = 5` the speed is v = 2 and
///
///   h·Q̂(2) = (1/3)[K(1/h) + K(0) + K(−1/h)]
///          = (2·φ(1.4404...) + φ(0)) / 3
///          = 0.22723353215418382
///
/// with φ the standard normal pdf (K(0) = 0.3989422804014327, the
/// upper bound of the probability).
#[test]
fn transition_probability_golden() {
    let trans =
        SpeedKdeTransition::from_speed_samples(vec![1.0, 2.0, 3.0], Kernel::Gaussian).unwrap();
    assert!((trans.kde().bandwidth() - 0.6942531626616071).abs() < 1e-12);

    let p = trans.probability(Point::new(0.0, 0.0), Point::new(10.0, 0.0), 5.0);
    assert!((p - 0.22723353215418382).abs() < 1e-12, "p = {p}");

    // Bounded by K(0) (it is a scaled density, not a raw density).
    assert!(p <= 0.3989422804014327 + 1e-15);
    // Pure translation invariance: only v matters.
    let p2 = trans.probability(Point::new(3.0, 4.0), Point::new(3.0, 14.0), 5.0);
    assert!((p - p2).abs() < 1e-15);
}

/// Eq. 8–9 — the per-timestamp STP is the location-noise weight
/// normalized over grid cells.
///
/// A 30 m × 10 m grid with 10 m cells has three cells with centers
/// (5,5), (15,5), (25,5). For one observation exactly at (15,5) with
/// untruncated Gaussian noise σ = 10, the unnormalized weights
/// (Eq. 3) are
///
///   center: exp(0) = 1,    sides: exp(−10²/(2·10²)) = e^{−1/2}
///
/// so after Eq. 8–9 normalization
///
///   STP(center) = 1/(1 + 2e^{−1/2}) = 0.45186276187760605
///   STP(side)   = e^{−1/2}·STP(center) = 0.274068619061197.
#[test]
fn stp_normalization_golden() {
    let grid = Grid::new(
        BoundingBox::new(Point::ORIGIN, Point::new(30.0, 10.0)),
        10.0,
    )
    .unwrap();
    let noise = GaussianNoise::with_truncation(10.0, None);
    let traj = Trajectory::from_xyt(&[(15.0, 5.0, 7.0)]).unwrap();
    // Single-point trajectory: a stand-in transition model (unused at
    // an observed timestamp).
    let trans = SpeedKdeTransition::from_speed_samples(vec![1.0], Kernel::Gaussian).unwrap();
    let est = StpEstimator::new(&grid, &noise, &trans, &traj);

    let stp = est.stp(7.0);
    assert_eq!(stp.len(), 3, "all three cells carry mass");
    assert!((stp.total() - 1.0).abs() < 1e-12, "Eq. 9: sums to one");

    let center = stp.get(grid.cell_at(Point::new(15.0, 5.0)).unwrap());
    let left = stp.get(grid.cell_at(Point::new(5.0, 5.0)).unwrap());
    let right = stp.get(grid.cell_at(Point::new(25.0, 5.0)).unwrap());
    assert!((center - 0.45186276187760605).abs() < 1e-12, "{center}");
    assert!((left - 0.274068619061197).abs() < 1e-12, "{left}");
    assert!((right - left).abs() < 1e-15, "symmetric sides");
}
