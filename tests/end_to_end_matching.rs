//! End-to-end integration: the full pipeline from workload generation
//! through dataset construction to trajectory matching, on both
//! scenarios — the shape the paper's evaluation asserts, in miniature.

use sts_repro::eval::experiments::ExperimentConfig;
use sts_repro::eval::matching::matching_ranks;
use sts_repro::eval::measures::{measure_set, MeasureKind};
use sts_repro::eval::metrics::{mean_rank, precision};
use sts_repro::eval::scenario::{Scenario, ScenarioConfig, ScenarioKind};

fn scenario(kind: ScenarioKind) -> Scenario {
    Scenario::build(ScenarioConfig {
        kind,
        n_objects: 8,
        seed: 0xE2E,
    })
}

#[test]
fn sts_matches_mall_pairs_cleanly() {
    let s = scenario(ScenarioKind::Mall);
    assert!(s.pairs.len() >= 5, "enough pairs generated");
    let measures = measure_set(&[MeasureKind::Sts], &s, &s.pairs);
    let ranks = matching_ranks(measures[0].1.as_ref(), &s.pairs);
    let p = precision(&ranks);
    let mr = mean_rank(&ranks);
    assert!(p >= 0.8, "clean mall matching should be near-perfect: {p}");
    assert!(mr <= 1.5, "mean rank {mr}");
}

#[test]
fn sts_matches_taxi_pairs_cleanly() {
    let s = scenario(ScenarioKind::Taxi);
    let measures = measure_set(&[MeasureKind::Sts], &s, &s.pairs);
    let ranks = matching_ranks(measures[0].1.as_ref(), &s.pairs);
    let p = precision(&ranks);
    assert!(p >= 0.8, "clean taxi matching should be near-perfect: {p}");
}

#[test]
fn sts_survives_stress_better_than_a_threshold_baseline() {
    use sts_repro::eval::experiments::{noise::distort_pairs, sampling::downsample_pairs};
    let cfg = ExperimentConfig {
        n_objects: 8,
        seed: 0xE2E,
        full: false,
    };
    let s = scenario(ScenarioKind::Mall);
    // Stress: keep 30 % of the points, add 6 m noise (beyond the CATS
    // tolerance scale).
    let stressed = downsample_pairs(&cfg, &s.pairs, 0.3, "e2e");
    let stressed = distort_pairs(&cfg, &stressed, 6.0, "e2e");
    let measures = measure_set(&[MeasureKind::Sts, MeasureKind::Lcss], &s, &stressed);
    let sts_ranks = matching_ranks(measures[0].1.as_ref(), &stressed);
    let lcss_ranks = matching_ranks(measures[1].1.as_ref(), &stressed);
    assert!(
        precision(&sts_ranks) >= precision(&lcss_ranks),
        "STS {:?} should not lose to threshold-based LCSS {:?} under stress",
        precision(&sts_ranks),
        precision(&lcss_ranks)
    );
    assert!(
        mean_rank(&sts_ranks) <= mean_rank(&lcss_ranks),
        "mean rank: STS {} vs LCSS {}",
        mean_rank(&sts_ranks),
        mean_rank(&lcss_ranks)
    );
}

#[test]
fn every_comparison_measure_completes_the_task() {
    let s = scenario(ScenarioKind::Mall);
    let measures = measure_set(MeasureKind::comparison_set(), &s, &s.pairs);
    for (name, m) in &measures {
        let ranks = matching_ranks(m.as_ref(), &s.pairs);
        assert_eq!(ranks.len(), s.pairs.len(), "{name}");
        for &r in &ranks {
            assert!(r >= 1 && r <= s.pairs.len(), "{name}: rank {r}");
        }
    }
}
