//! SIGKILL acceptance tests for the out-of-core tiled engine: a real
//! process death at an arbitrary moment — including mid-spill and
//! mid-merge — must cost at most the in-flight tile, and the resumed
//! run must land on the byte-identical result of a run that was never
//! interrupted.
//!
//! The workload is the worker binary's `tile-drive` subcommand: a
//! 6×6 matrix of ~3 ms pairs spilled as 4-pair tiles, so tile writes
//! happen every ~12 ms and the kill schedule below lands on every
//! phase of the spill protocol across seeds. The disk-level chaos
//! (torn writes, bit flips, ENOSPC) lives in
//! `crates/robust/tests/tile_chaos.rs`; this suite is the real-SIGKILL
//! end of the same contract.

use std::process::Command;
use std::time::Duration;

const WORKER: &str = env!("CARGO_BIN_EXE_sts-worker");

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("sts-tile-crash-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> std::path::PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The tentpole acceptance test: SIGKILL a tiled job mid-run (kill
/// times staggered across seeds to land before, during and after tile
/// spills), resume from the tile directory, and require the final
/// matrix bytes to equal an uninterrupted run's — across 8 seeds,
/// with at least one genuine mid-flight kill.
#[test]
fn sigkill_during_spill_resumes_byte_identical_across_seeds() {
    let tmp = TempDir::new("sigkill");
    let mut killed_mid_run = 0;
    for seed in 0u64..8 {
        let tiles = tmp.path(&format!("tiles-{seed}"));
        let out = tmp.path(&format!("tiles-{seed}.out"));
        let reference = tmp.path(&format!("tiles-{seed}.ref"));

        // Uninterrupted reference run (its own tile directory).
        let status = Command::new(WORKER)
            .arg("tile-drive")
            .arg(tmp.path(&format!("tiles-{seed}-ref")))
            .arg(seed.to_string())
            .arg(&reference)
            .status()
            .unwrap();
        assert!(status.success(), "seed {seed}: reference run failed");

        // Victim run: SIGKILLed at a seed-staggered moment.
        let mut child = Command::new(WORKER)
            .arg("tile-drive")
            .arg(&tiles)
            .arg(seed.to_string())
            .arg(&out)
            .spawn()
            .unwrap();
        std::thread::sleep(Duration::from_millis(40 + seed * 9));
        match child.try_wait().unwrap() {
            Some(status) => assert!(status.success(), "seed {seed}: early exit failed"),
            None => {
                child.kill().unwrap(); // SIGKILL: no cleanup, no final rename
                child.wait().unwrap();
                killed_mid_run += 1;
            }
        }

        // Resume from the surviving tiles and compare bytes.
        let status = Command::new(WORKER)
            .arg("tile-drive")
            .arg(&tiles)
            .arg(seed.to_string())
            .arg(&out)
            .status()
            .unwrap();
        assert!(status.success(), "seed {seed}: resume failed");
        assert_eq!(
            std::fs::read(&out).unwrap(),
            std::fs::read(&reference).unwrap(),
            "seed {seed}: resumed tiled matrix differs from uninterrupted run"
        );
    }
    assert!(
        killed_mid_run >= 1,
        "no run was actually killed mid-flight; slow the tile-drive workload down"
    );
}

/// Exec-mode equivalence, out of core: the same tiled job computed by
/// `sts-worker` subprocesses produces byte-identical output to the
/// in-process run — tiling composes with process isolation.
#[test]
fn subprocess_tiled_run_matches_in_process_byte_for_byte() {
    let tmp = TempDir::new("modes");
    let in_proc = tmp.path("in-proc.out");
    let sub = tmp.path("sub.out");

    let status = Command::new(WORKER)
        .arg("tile-drive")
        .arg(tmp.path("tiles-in-proc"))
        .arg("3")
        .arg(&in_proc)
        .status()
        .unwrap();
    assert!(status.success(), "in-process tiled run failed");

    let status = Command::new(WORKER)
        .arg("tile-drive")
        .arg(tmp.path("tiles-sub"))
        .arg("3")
        .arg(&sub)
        .arg("subprocess")
        .status()
        .unwrap();
    assert!(status.success(), "subprocess tiled run failed");

    assert_eq!(
        std::fs::read(&in_proc).unwrap(),
        std::fs::read(&sub).unwrap(),
        "subprocess-tiled and in-process-tiled outputs differ"
    );
}
