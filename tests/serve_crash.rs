//! SIGKILL acceptance tests for the streaming co-location service: a
//! real process death at an arbitrary moment — mid-ingest, mid-commit,
//! mid-snapshot-truncation — must lose nothing the server acked as
//! durable, and after restart + client resend the served answers must
//! be **byte-identical** to a run that was never interrupted.
//!
//! The victim is the real `sts-serve` binary over real TCP, killed at
//! seed-staggered moments while a resend-until-acked client feeds it;
//! commit, segment and snapshot intervals are shrunk so the kill
//! schedule lands on every phase of the WAL/snapshot protocol across
//! the 8 seeds. The disk-level chaos (torn writes, bit flips, ENOSPC)
//! lives in `crates/robust/tests/serve_chaos.rs`; this suite is the
//! real-SIGKILL end of the same contract.

use std::io::BufRead;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;
use sts_rng::{Rng, Xoshiro256pp};
use sts_runtime::FsStorage;
use sts_serve::{Ping, ServeClient, ServeOptions, Server};

const SERVE: &str = env!("CARGO_BIN_EXE_sts-serve");
const ROUNDS: u64 = 50;
const OBJECTS: u64 = 3;

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("sts-serve-crash-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> std::path::PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Seeded random-walk pings, seq 1..=ROUNDS*OBJECTS.
fn corpus(seed: u64) -> Vec<Ping> {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5E4E_C4A5 ^ seed);
    let mut pos: Vec<(f64, f64)> = (0..OBJECTS)
        .map(|_| (rng.random_range(20.0..80.0), rng.random_range(20.0..80.0)))
        .collect();
    let mut out = Vec::new();
    let mut seq = 0;
    for i in 0..ROUNDS {
        for obj in 0..OBJECTS {
            let p = &mut pos[obj as usize];
            p.0 = (p.0 + rng.random_range(-3.0..3.0)).clamp(0.5, 99.5);
            p.1 = (p.1 + rng.random_range(-3.0..3.0)).clamp(0.5, 99.5);
            seq += 1;
            out.push(Ping {
                seq,
                obj,
                t: i as f64 * 4.0 + 0.5 * obj as f64,
                x: p.0,
                y: p.1,
            });
        }
    }
    out
}

/// The query set whose raw reply frames are byte-compared across runs.
fn probe(c: &mut ServeClient) -> Vec<String> {
    let t_hi = ROUNDS as f64 * 4.0;
    vec![
        c.colocate_raw(0, 1, 2.0, t_hi, 7).unwrap(),
        c.colocate_raw(1, 2, 0.0, t_hi / 2.0, 4).unwrap(),
        c.topk_raw(0, 1.0, t_hi, 6, 4).unwrap(),
    ]
}

/// Spawns the real binary on an ephemeral port and parses the
/// `listening <addr>` line it prints once bound.
fn spawn_server(dir: &std::path::Path, extra: &[&str]) -> (Child, SocketAddr) {
    let mut child = Command::new(SERVE)
        .arg("--dir")
        .arg(dir)
        .args(extra)
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .unwrap();
    let addr = line
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .trim()
        .parse()
        .unwrap();
    (child, addr)
}

/// The tentpole acceptance test: SIGKILL the serving binary at
/// seed-staggered moments mid-ingest, restart it on the same data
/// directory, resend everything above the recovered durable horizon,
/// and require the query answers to be byte-identical to an
/// uninterrupted in-process run fed the same pings — across 8 seeds,
/// with at least one genuine mid-stream kill and one genuinely
/// partial recovery.
#[test]
fn sigkill_recovery_is_byte_identical_across_staggered_seeds() {
    let tmp = TempDir::new("sigkill");
    let mut killed_mid_ingest = 0u32;
    let mut partial_recoveries = 0u32;
    for seed in 0u64..8 {
        let pings = corpus(seed);
        let n = pings.len() as u64;

        // Uninterrupted reference (in-process: same server code, no
        // process to kill), its own directory.
        let want = {
            let h = Server::start(
                ServeOptions::new(tmp.path(&format!("ref-{seed}"))),
                Arc::new(FsStorage),
                "127.0.0.1:0",
            )
            .unwrap();
            let mut c = ServeClient::connect(h.addr()).unwrap();
            for p in &pings {
                c.ingest_until_acked(p).unwrap();
            }
            c.flush().unwrap();
            let want = probe(&mut c);
            drop(c);
            h.shutdown();
            want
        };

        // Victim run: tight commit/segment/snapshot intervals so the
        // staggered kills land on every phase of the durability
        // protocol; 1 ms apply delay widens the mid-ingest window.
        let dir = tmp.path(&format!("victim-{seed}"));
        let knobs: &[&str] = &[
            "--commit-every",
            "3",
            "--segment-records",
            "24",
            "--snapshot-every",
            "40",
            "--ingest-delay-ms",
            "1",
        ];
        let (mut child, addr) = spawn_server(&dir, knobs);
        let killer = {
            let delay = Duration::from_millis(20 + seed * 23);
            std::thread::spawn(move || {
                std::thread::sleep(delay);
                // SIGKILL: no atexit, no flush, no cleanup.
                let _ = child.kill();
                child.wait().unwrap()
            })
        };
        let mut fed = 0usize;
        let mut c = ServeClient::connect(addr).unwrap();
        for p in &pings {
            match c.ingest_until_acked(p) {
                Ok(_) => fed += 1,
                Err(_) => break, // the kill landed
            }
        }
        drop(c);
        killer.join().unwrap();
        if fed < pings.len() {
            killed_mid_ingest += 1;
        }

        // Restart on the same directory; the hello reply names the
        // durable horizon, the client resends everything above it.
        let (mut child2, addr2) = spawn_server(&dir, &["--snapshot-every", "40"]);
        let mut c = ServeClient::connect(addr2).unwrap();
        let durable = c.hello().unwrap();
        assert!(
            durable <= n,
            "seed {seed}: durable horizon {durable} beyond the corpus"
        );
        if durable > 0 && durable < n {
            partial_recoveries += 1;
        }
        for p in pings.iter().filter(|p| p.seq > durable) {
            c.ingest_until_acked(p).unwrap();
        }
        assert_eq!(c.flush().unwrap(), n, "seed {seed}: all pings durable");
        assert_eq!(
            probe(&mut c),
            want,
            "seed {seed}: crash + recovery + resend must be byte-identical \
             to the uninterrupted run (killed after {fed}/{} pings, durable {durable})",
            pings.len()
        );
        c.shutdown_server().unwrap();
        drop(c);
        let status = child2.wait().unwrap();
        assert!(status.success(), "seed {seed}: clean shutdown exits zero");
    }
    assert!(
        killed_mid_ingest >= 1,
        "kill schedule never landed mid-ingest — stagger it"
    );
    assert!(
        partial_recoveries >= 1,
        "no seed recovered a genuinely partial horizon — the test is not \
         exercising replay + resend"
    );
}

/// A kill immediately after an explicit snapshot + truncation must
/// recover from the snapshot alone (empty WAL) — the recovery path
/// the periodic case only sometimes hits.
#[test]
fn sigkill_right_after_snapshot_recovers_from_snapshot() {
    let tmp = TempDir::new("postsnap");
    let pings = corpus(99);
    let n = pings.len() as u64;
    let dir = tmp.path("victim");
    let (mut child, addr) = spawn_server(&dir, &["--commit-every", "4"]);
    let mut c = ServeClient::connect(addr).unwrap();
    for p in &pings {
        c.ingest_until_acked(p).unwrap();
    }
    c.snapshot().unwrap();
    let want = probe(&mut c);
    drop(c);
    child.kill().unwrap();
    child.wait().unwrap();

    let (mut child2, addr2) = spawn_server(&dir, &[]);
    let mut c = ServeClient::connect(addr2).unwrap();
    assert_eq!(c.hello().unwrap(), n, "snapshot covered everything");
    assert_eq!(
        probe(&mut c),
        want,
        "post-snapshot recovery is byte-identical"
    );
    c.shutdown_server().unwrap();
    drop(c);
    assert!(child2.wait().unwrap().success());
}
