#![warn(missing_docs)]
//! # sts-repro — umbrella crate
//!
//! Re-exports the public API of the STS reproduction workspace so that
//! examples and downstream users can depend on a single crate.
//!
//! The primary entry points are:
//!
//! * [`sts_core::Sts`] — the spatial-temporal similarity measure itself;
//! * [`sts_obs`] — the std-only telemetry layer (metrics registry,
//!   structured tracing, JSONL export) behind `STS_METRICS`/`STS_TRACE`;
//! * [`sts_rng`] — the deterministic randomness substrate (seeded
//!   xoshiro256++ PRNG and the in-repo property-testing harness);
//! * [`sts_traj`] — trajectory types, sampling, noise, synthetic
//!   workload generators, and the repair pipeline + lenient reader for
//!   dirty real-world feeds;
//! * [`sts_robust`] — deterministic fault injectors and the chaos
//!   property suite attacking the pipeline above;
//! * [`sts_serve`] — the crash-safe streaming co-location service
//!   (WAL-backed incremental ingest, windowed queries, overload
//!   shedding) behind the `sts-serve` binary;
//! * [`sts_baselines`] — the comparison measures evaluated in the paper;
//! * [`sts_eval`] — the trajectory-matching harness and the per-figure
//!   experiment drivers.
//!
//! See the workspace `README.md` for a quickstart and `DESIGN.md` for the
//! full system inventory.

pub use sts_baselines as baselines;
pub use sts_core as core;
pub use sts_eval as eval;
pub use sts_geo as geo;
pub use sts_isolate as isolate;
pub use sts_obs as obs;
pub use sts_rng as rng;
pub use sts_rng::{prop_assert, prop_assert_eq};
pub use sts_robust as robust;
pub use sts_runtime as runtime;
pub use sts_serve as serve;
pub use sts_stats as stats;
pub use sts_traj as traj;
