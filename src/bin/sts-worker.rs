//! `sts-worker` — the subprocess scoring worker, plus the crash-suite
//! drivers the isolation tests exercise it with.
//!
//! Subcommands:
//!
//! - `serve` (or no argument): speak the `sts-isolate` wire protocol on
//!   stdin/stdout and score chunks until EOF or `shutdown`. This is the
//!   binary [`sts_core::ExecMode::Subprocess`] jobs spawn.
//! - `serve-tcp <addr>`: connect to the sharded coordinator at `addr`
//!   (loopback TCP) and speak the same wire protocol over the socket.
//!   This is the binary [`sts_core::ExecMode::Sharded`] fleets spawn.
//! - `drive <ckpt> <seed> <out>`: run a slow, checkpointed, in-process
//!   job over a deterministic corpus and write the final matrix bits to
//!   `<out>`. The kill-resume chaos test SIGKILLs this mid-run, reruns
//!   it, and asserts the resumed output is byte-identical.
//! - `chaos <in-process|subprocess> <seed>`: run the 8×8 crash-suite
//!   workload whose fault plan aborts, wedges and garbles workers.
//!   Subprocess mode finishes with only the poison pairs quarantined;
//!   in-process mode provably cannot finish (the acceptance test
//!   asserts this process dies or wedges).
//! - `tile-drive <dir> <seed> <out> [subprocess]`: run a slow *tiled*
//!   job spilling tiny tiles to `<dir>` and write the final matrix
//!   bits to `<out>`. The tile crash suite SIGKILLs this mid-spill,
//!   reruns it, and asserts the resumed output is byte-identical.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use sts_core::{
    CheckpointConfig, ExecMode, IsolateOptions, JobConfig, JobReport, PairOutcome, Sts, StsConfig,
    TileConfig,
};
use sts_geo::{BoundingBox, Grid, Point};
use sts_rng::{Rng, Xoshiro256pp};
use sts_runtime::{FaultPlan, RetryPolicy};
use sts_traj::Trajectory;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    match argv.as_slice() {
        [] | ["serve"] => run_serve(),
        ["serve-tcp", addr] => run_serve_tcp(addr),
        ["drive", ckpt, seed, out] => run_drive(ckpt, seed, out),
        ["chaos", mode, seed] => run_chaos(mode, seed),
        ["tile-drive", dir, seed, out] => run_tile_drive(dir, seed, out, false),
        ["tile-drive", dir, seed, out, "subprocess"] => run_tile_drive(dir, seed, out, true),
        _ => {
            eprintln!(
                "usage: sts-worker [serve | serve-tcp <addr> | drive <ckpt> <seed> <out> | \
                 chaos <mode> <seed> | tile-drive <dir> <seed> <out> [subprocess]]"
            );
            ExitCode::from(2)
        }
    }
}

/// Serve the wire protocol until the supervisor hangs up. A protocol
/// error (torn frame, dead pipe) is a nonzero exit the supervisor will
/// see and attribute; it must not look like success.
///
/// `STS_TRACE`/`STS_METRICS` work here exactly as in the coordinator,
/// with one twist: a file-path `STS_TRACE` gets `.<pid>` appended, so
/// a worker inheriting its coordinator's environment streams its own
/// trace JSONL to its own file (on top of whatever telemetry it ships
/// over the wire) instead of truncating the coordinator's.
fn run_serve() -> ExitCode {
    sts_obs::init_from_env_suffixed(Some(&std::process::id().to_string()));
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    match sts_core::serve(&mut stdin.lock(), &mut stdout.lock()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sts-worker: {e}");
            ExitCode::from(3)
        }
    }
}

/// Connect out to the sharded coordinator and serve the wire protocol
/// over the socket until it hangs up. Same error contract as stdio
/// serving: a protocol failure is a nonzero exit, never a fake success.
fn run_serve_tcp(addr: &str) -> ExitCode {
    sts_obs::init_from_env_suffixed(Some(&std::process::id().to_string()));
    let stream = match std::net::TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sts-worker: cannot connect to coordinator {addr}: {e}");
            return ExitCode::from(3);
        }
    };
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("sts-worker: cannot clone socket: {e}");
            return ExitCode::from(3);
        }
    };
    let mut reader = std::io::BufReader::new(stream);
    let mut writer = writer;
    match sts_core::serve(&mut reader, &mut writer) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sts-worker: {e}");
            ExitCode::from(3)
        }
    }
}

/// The shared deterministic arena: 100×100 world, 5-unit cells.
fn grid() -> Grid {
    Grid::new(
        BoundingBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
        5.0,
    )
    .unwrap()
}

/// `n` seeded random walks of 12 points each, confined to the grid.
fn corpus(seed: u64, n: usize) -> Vec<Trajectory> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut x = rng.random_range(20.0..80.0);
            let mut y = rng.random_range(20.0..80.0);
            let mut t = 0.0;
            let pts: Vec<(f64, f64, f64)> = (0..12)
                .map(|_| {
                    x = (x + rng.random_range(-4.0..4.0)).clamp(0.5, 99.5);
                    y = (y + rng.random_range(-4.0..4.0)).clamp(0.5, 99.5);
                    t += rng.random_range(2.0..8.0);
                    (x, y, t)
                })
                .collect();
            Trajectory::from_xyt(&pts).unwrap()
        })
        .collect()
}

/// One cell as a stable, bit-exact token.
fn cell_token(cell: &PairOutcome) -> String {
    match cell {
        PairOutcome::Score(s) => format!("s:{:016x}", s.to_bits()),
        PairOutcome::Quarantined => "q".into(),
        PairOutcome::Panicked => "p".into(),
        PairOutcome::Failed { attempts } => format!("f:{attempts}"),
        PairOutcome::Skipped => "k".into(),
        PairOutcome::Poisoned { exit } => format!("x:{exit}"),
    }
}

/// FNV-1a over the rendered matrix — one digest a test can compare
/// across runs, modes and resumes.
fn matrix_digest(matrix: &[Vec<PairOutcome>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for row in matrix {
        for cell in row {
            for b in cell_token(cell).bytes().chain([b'|']) {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

/// Fast retries so the crash suites stay CI-sized.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 2,
        backoff_base: Duration::from_micros(20),
        backoff_cap: Duration::from_micros(200),
        seed: 0xBAC0FF,
    }
}

/// Checkpointed in-process job, every pair slowed ~3 ms, flushed every
/// chunk: a long window of mid-run checkpoints for the kill test.
fn run_drive(ckpt: &str, seed: &str, out: &str) -> ExitCode {
    let Ok(seed) = seed.parse::<u64>() else {
        eprintln!("sts-worker: drive seed must be a u64");
        return ExitCode::from(2);
    };
    let trajs = corpus(0xD21F_E000 ^ seed, 12);
    let (queries, candidates) = trajs.split_at(6);
    let cfg = JobConfig {
        retry: fast_retry(),
        threads: 1,
        chunk_pairs: 1,
        checkpoint: Some(CheckpointConfig {
            path: PathBuf::from(ckpt),
            flush_every_chunks: 1,
        }),
        fault: Some(FaultPlan {
            seed,
            slow_per_mille: 1000,
            slow_for: Duration::from_millis(3),
            ..FaultPlan::default()
        }),
        ..JobConfig::default()
    };
    let sts = Sts::new(StsConfig::default(), grid());
    let (matrix, report) = match sts.similarity_matrix_supervised(queries, candidates, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sts-worker: drive failed: {e}");
            return ExitCode::from(4);
        }
    };
    let mut body = format!("state {:?}\n", report.stats.state);
    for (i, row) in matrix.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            body.push_str(&format!("cell {i} {j} {}\n", cell_token(cell)));
        }
    }
    if std::fs::write(out, body).is_err() {
        eprintln!("sts-worker: cannot write {out}");
        return ExitCode::from(4);
    }
    ExitCode::SUCCESS
}

/// Slow tiled in-process (or subprocess) job spilling 4-pair tiles to
/// `dir`: every pair sleeps ~3 ms, so a tile spill lands every ~12 ms
/// — a long window of mid-spill moments for the SIGKILL test. The
/// matrix bits written to `out` must be identical whether the run was
/// interrupted-and-resumed or not, and across exec modes.
fn run_tile_drive(dir: &str, seed: &str, out: &str, subprocess: bool) -> ExitCode {
    let Ok(seed) = seed.parse::<u64>() else {
        eprintln!("sts-worker: tile-drive seed must be a u64");
        return ExitCode::from(2);
    };
    let trajs = corpus(0x711E_D000 ^ seed, 12);
    let (queries, candidates) = trajs.split_at(6);
    let exec = if subprocess {
        ExecMode::Subprocess(IsolateOptions {
            worker: std::env::current_exe().ok(),
            hard_timeout: Duration::from_secs(5),
            ..IsolateOptions::default()
        })
    } else {
        ExecMode::InProcess
    };
    let cfg = JobConfig {
        retry: fast_retry(),
        threads: 1,
        chunk_pairs: 1,
        fault: Some(FaultPlan {
            seed,
            slow_per_mille: 1000,
            slow_for: Duration::from_millis(3),
            ..FaultPlan::default()
        }),
        exec,
        ..JobConfig::default()
    };
    let tiling = TileConfig {
        tile_pairs: 4,
        ..TileConfig::new(dir)
    };
    let sts = Sts::new(StsConfig::default(), grid());
    let (matrix, report) = match sts.similarity_matrix_tiled(queries, candidates, &cfg, &tiling) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sts-worker: tile-drive failed: {e}");
            return ExitCode::from(4);
        }
    };
    let mut body = format!("state {:?}\n", report.stats.state);
    for (i, row) in matrix.iter().enumerate() {
        for (j, cell) in row.iter().enumerate() {
            body.push_str(&format!("cell {i} {j} {}\n", cell_token(cell)));
        }
    }
    if std::fs::write(out, body).is_err() {
        eprintln!("sts-worker: cannot write {out}");
        return ExitCode::from(4);
    }
    ExitCode::SUCCESS
}

/// The crash-suite fault mix over 64 pairs: transient panics retries
/// heal, persistent panics that degrade cells, and the three process
/// killers — aborts, wedges (caught by the 1 s hard timeout) and
/// garbage output (caught by the frame codec).
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed: 0xC4A0_5000 ^ seed,
        transient_per_mille: 30,
        transient_failures: 1,
        persistent_per_mille: 30,
        abort_per_mille: 40,
        wedge_per_mille: 20,
        garbage_per_mille: 30,
        ..FaultPlan::default()
    }
}

/// Run the 8×8 crash-suite matrix in the requested mode and print a
/// parseable report. In-process mode is expected to never reach the
/// report: the first abort pair kills this process, or the first wedge
/// pair hangs it until the caller loses patience.
fn run_chaos(mode: &str, seed: &str) -> ExitCode {
    let Ok(seed) = seed.parse::<u64>() else {
        eprintln!("sts-worker: chaos seed must be a u64");
        return ExitCode::from(2);
    };
    let exec = match mode {
        "in-process" => ExecMode::InProcess,
        "subprocess" => ExecMode::Subprocess(IsolateOptions {
            worker: std::env::current_exe().ok(),
            hard_timeout: Duration::from_secs(1),
            ..IsolateOptions::default()
        }),
        _ => {
            eprintln!("sts-worker: chaos mode must be in-process or subprocess");
            return ExitCode::from(2);
        }
    };
    let trajs = corpus(0xC4A0_5EED ^ seed, 16);
    let (queries, candidates) = trajs.split_at(8);
    let cfg = JobConfig {
        retry: fast_retry(),
        chunk_pairs: 8,
        fault: Some(chaos_plan(seed)),
        exec,
        ..JobConfig::default()
    };
    let sts = Sts::new(StsConfig::default(), grid());
    let (matrix, report): (Vec<Vec<PairOutcome>>, JobReport) =
        match sts.similarity_matrix_supervised(queries, candidates, &cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("sts-worker: chaos failed: {e}");
                return ExitCode::from(4);
            }
        };
    let mut out = String::new();
    out.push_str(&format!("state {:?}\n", report.stats.state));
    out.push_str(&format!(
        "pairs {} completed {} failed {} skipped {}\n",
        report.stats.pairs_total,
        report.stats.pairs_completed,
        report.stats.pairs_failed,
        report.stats.pairs_skipped,
    ));
    let cols = candidates.len();
    for &(i, j, exit) in &report.batch.poisoned_pairs {
        out.push_str(&format!("poisoned {} {exit}\n", i * cols + j));
    }
    if let Some(iso) = &report.stats.isolate {
        out.push_str(&format!(
            "isolate spawned {} restarts {} kills {} protocol {} bisect {}\n",
            iso.workers_spawned,
            iso.worker_restarts,
            iso.worker_kills,
            iso.protocol_errors,
            iso.max_bisect_depth,
        ));
    }
    out.push_str(&format!("digest {:016x}\n", matrix_digest(&matrix)));
    let stdout = std::io::stdout();
    let _ = stdout.lock().write_all(out.as_bytes());
    ExitCode::SUCCESS
}
