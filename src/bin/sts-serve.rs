//! `sts-serve` — the crash-safe streaming co-location server.
//!
//! Two modes:
//!
//! - `--addr <host:port>` (default `127.0.0.1:0`): bind a TCP listener
//!   and serve the `sts-isolate` frame protocol until a client sends
//!   `shutdown` (or the process is killed — that is the point: the WAL
//!   and snapshots in `--dir` make a SIGKILL at any instant recoverable
//!   to byte-identical query answers). Prints `listening <addr>` on
//!   stdout once bound, which is how the crash suite finds the
//!   ephemeral port.
//! - `--stdio`: serve a single session over stdin/stdout, deadline
//!   disarmed (pipes cannot slowloris).
//!
//! All durability/overload knobs are flags so the kill- and chaos-tests
//! can shrink commit intervals to CI scale. `STS_TRACE`/`STS_METRICS`
//! work as everywhere else in the workspace.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use sts_runtime::FsStorage;
use sts_serve::{ServeOptions, Server};

struct Args {
    opts: ServeOptions,
    addr: String,
    stdio: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: sts-serve --dir <data-dir> [--addr <host:port>] [--stdio]\n\
         \x20      [--segment-records <n>] [--snapshot-every <n>] [--queue-bound <n>]\n\
         \x20      [--commit-every <n>] [--ingest-delay-ms <n>] [--read-deadline-ms <n>]\n\
         \x20      [--frame-cap <bytes>] [--shed-defer-depth <n>]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut dir: Option<String> = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut stdio = false;
    let mut opts_edits: Vec<(String, u64)> = Vec::new();
    let mut i = 0;
    let take_str = |argv: &[String], i: usize, flag: &str| -> Result<String, ExitCode> {
        argv.get(i + 1).cloned().ok_or_else(|| {
            eprintln!("sts-serve: {flag} needs an argument");
            usage()
        })
    };
    let take_num = |argv: &[String], i: usize, flag: &str| -> Result<u64, ExitCode> {
        argv.get(i + 1).and_then(|v| v.parse().ok()).ok_or_else(|| {
            eprintln!("sts-serve: {flag} needs an integer argument");
            usage()
        })
    };
    while i < argv.len() {
        let flag = argv[i].as_str();
        match flag {
            "--dir" => {
                dir = Some(take_str(&argv, i, flag)?);
                i += 2;
            }
            "--addr" => {
                addr = take_str(&argv, i, flag)?;
                i += 2;
            }
            "--stdio" => {
                stdio = true;
                i += 1;
            }
            "--segment-records" | "--snapshot-every" | "--queue-bound" | "--commit-every"
            | "--ingest-delay-ms" | "--read-deadline-ms" | "--frame-cap" | "--shed-defer-depth" => {
                opts_edits.push((flag.to_string(), take_num(&argv, i, flag)?));
                i += 2;
            }
            _ => {
                eprintln!("sts-serve: unknown flag {flag}");
                return Err(usage());
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("sts-serve: --dir is required");
        return Err(usage());
    };
    let mut opts = ServeOptions::new(dir);
    for (name, v) in opts_edits {
        match name.as_str() {
            "--segment-records" => opts.segment_records = v.max(1) as usize,
            "--snapshot-every" => opts.snapshot_every = v,
            "--queue-bound" => opts.queue_bound = v.max(1) as usize,
            "--commit-every" => opts.commit_every = v.max(1) as usize,
            "--ingest-delay-ms" => opts.ingest_delay = Duration::from_millis(v),
            "--read-deadline-ms" => {
                opts.read_deadline = if v == 0 {
                    None
                } else {
                    Some(Duration::from_millis(v))
                }
            }
            "--frame-cap" => opts.frame_cap = v.max(64) as usize,
            "--shed-defer-depth" => opts.shed_defer_depth = v as usize,
            _ => unreachable!(),
        }
    }
    Ok(Args { opts, addr, stdio })
}

fn main() -> ExitCode {
    sts_obs::init_from_env();
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let storage = Arc::new(FsStorage);
    if args.stdio {
        return match Server::run_stdio(args.opts, storage) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("sts-serve: {e}");
                ExitCode::from(3)
            }
        };
    }
    let handle = match Server::start(args.opts, storage, &args.addr) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("sts-serve: {e}");
            return ExitCode::from(3);
        }
    };
    // The crash suite parses this line to find the ephemeral port, so
    // it must be flushed before any client connects.
    use std::io::Write as _;
    let mut stdout = std::io::stdout();
    let _ = writeln!(stdout, "listening {}", handle.addr());
    let _ = stdout.flush();
    handle.join();
    ExitCode::SUCCESS
}
