//! Quickstart: measure the spatial-temporal similarity of two
//! trajectories with STS.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sts_repro::core::{Sts, StsConfig};
use sts_repro::geo::{BoundingBox, Grid, Point};
use sts_repro::traj::Trajectory;

fn main() {
    // 1. Partition the area of interest into grid cells (paper §IV-A).
    //    Here: a 200 m × 100 m area with 5 m cells.
    let area = BoundingBox::new(Point::new(0.0, 0.0), Point::new(200.0, 100.0));
    let grid = Grid::new(area, 5.0).expect("valid grid");

    // 2. Configure STS: the localization noise σ of the sensing system
    //    (Eq. 3) and the speed-KDE kernel (Eq. 6).
    let sts = Sts::new(
        StsConfig {
            noise_sigma: 3.0,
            ..StsConfig::default()
        },
        grid,
    );

    // 3. Three trajectories as (x, y, t) samples:
    //    - `alice` walks east along y = 50;
    //    - `bob` walks the same corridor at the same time, but his
    //      positions are sampled at *different* instants and with a bit
    //      of noise (sporadic, asynchronous sampling);
    //    - `carol` walks a parallel corridor 30 m away.
    let alice = Trajectory::from_xyt(&[
        (0.0, 50.0, 0.0),
        (20.0, 50.0, 20.0),
        (40.0, 50.0, 40.0),
        (60.0, 50.0, 60.0),
        (80.0, 50.0, 80.0),
    ])
    .expect("valid trajectory");
    let bob = Trajectory::from_xyt(&[
        (8.0, 51.5, 8.0),
        (31.0, 49.0, 30.0),
        (52.0, 50.5, 52.0),
        (74.0, 50.0, 74.0),
    ])
    .expect("valid trajectory");
    let carol = Trajectory::from_xyt(&[
        (0.0, 80.0, 0.0),
        (20.0, 80.0, 20.0),
        (40.0, 80.0, 40.0),
        (60.0, 80.0, 60.0),
        (80.0, 80.0, 80.0),
    ])
    .expect("valid trajectory");

    // 4. STS = average co-location probability over the merged
    //    timestamps (Eq. 10). Higher = more spatial-temporal overlap.
    let s_bob = sts.similarity(&alice, &bob).expect("both have >= 2 points");
    let s_carol = sts
        .similarity(&alice, &carol)
        .expect("both have >= 2 points");

    println!("STS(alice, bob)   = {s_bob:.4}   <- same corridor, same time");
    println!("STS(alice, carol) = {s_carol:.4}   <- parallel corridor 30 m away");
    assert!(
        s_bob > s_carol,
        "co-moving pair must score higher than the distant one"
    );
    println!("=> alice and bob were co-located; carol was not.");
}
