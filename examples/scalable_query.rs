//! Scalable querying with the co-location index: filter-and-refine
//! top-k instead of exact STS against the whole corpus.
//!
//! The paper's complexity analysis (§V-C) prices one STS evaluation at
//! `O(|Tra|·|Tra'|·|R|²)`; a city-scale corpus cannot be scanned at
//! that cost. `ColocationIndex` prunes to the candidates that share a
//! spatio-temporal region with the query — everything else would score
//! ~0 anyway.
//!
//! ```sh
//! cargo run --release --example scalable_query
//! ```

use std::time::Instant;
use sts_repro::core::{ColocationIndex, Sts, StsConfig};
use sts_repro::geo::{BoundingBox, Grid, Point};
use sts_repro::traj::generators::{cdr, taxi};
use sts_repro::traj::Trajectory;
use sts_rng::Xoshiro256pp;

fn main() {
    // A fleet of 60 taxis.
    let cfg = taxi::TaxiConfig {
        n_taxis: 60,
        seed: 4242,
        ..taxi::TaxiConfig::default()
    };
    let workload = taxi::generate(&cfg);
    let corpus: Vec<Trajectory> = workload
        .objects
        .iter()
        .map(|o| o.trajectory.clone())
        .collect();

    // The query: taxi 17's movement as seen by a *different* sensing
    // system — sparse, bursty CDR-style events from the driver's phone.
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    let query = cdr::sample_path_cdr(
        &workload.objects[17].path,
        &cdr::CdrConfig {
            burst_interval: 20.0,
            idle_interval: 180.0,
            ..cdr::CdrConfig::default()
        },
        &mut rng,
    );
    println!(
        "query: {} CDR events over {:.0} s (taxi 17's phone)",
        query.len(),
        query.duration()
    );

    let area = BoundingBox::new(Point::ORIGIN, Point::new(cfg.city_size, cfg.city_size));
    let grid = Grid::new(area.inflated(200.0), 100.0).expect("valid grid");
    let sts = Sts::new(
        StsConfig {
            noise_sigma: 50.0,
            ..StsConfig::default()
        },
        grid.clone(),
    );

    // Exact scan: STS against all 60 taxis.
    let t0 = Instant::now();
    let exact = sts
        .top_k(&query, &corpus, 3)
        .expect("query has >= 2 points");
    let exact_time = t0.elapsed();

    // Filter-and-refine: index prunes, exact STS on the few survivors.
    let t0 = Instant::now();
    let index = ColocationIndex::build(grid, 60.0, &corpus);
    let build_time = t0.elapsed();
    let t0 = Instant::now();
    let pruned = index
        .top_k(&sts, &query, &corpus, 3, 8)
        .expect("query has >= 2 points");
    let query_time = t0.elapsed();

    println!(
        "exact scan        : top-1 = taxi {} (STS {:.4}) in {:.2?}",
        exact[0].0, exact[0].1, exact_time
    );
    println!(
        "filter-and-refine : top-1 = taxi {} (STS {:.4}) in {:.2?} (+ {:.2?} one-off build, {} posting lists)",
        pruned[0].0, pruned[0].1, query_time, build_time, index.posting_lists()
    );

    assert_eq!(exact[0].0, 17, "exact scan must identify taxi 17");
    assert_eq!(
        pruned[0].0, exact[0].0,
        "pruning must not change the answer"
    );
    assert!(
        query_time < exact_time,
        "refining 8 candidates should beat scanning 60"
    );
    println!(
        "=> same answer, {}x faster per query",
        (exact_time.as_secs_f64() / query_time.as_secs_f64()).round()
    );
}
