//! Contact tracing in a shopping mall — the application the paper's
//! introduction leads with ("direct and far-reaching applications in
//! contact tracing, companion detection, …").
//!
//! An index case walked through a mall; we must find every visitor who
//! was co-located with them, from sporadically sampled, noisy WiFi
//! observations. Two true contacts are planted by deriving companion
//! paths from the index case's ground-truth path; everyone else walks
//! independently.
//!
//! ```sh
//! cargo run --release --example contact_tracing
//! ```

use sts_repro::core::{exposure_duration, Sts, StsConfig};
use sts_repro::geo::{BoundingBox, Grid, Point};
use sts_repro::traj::generators::{companion_path, mall};
use sts_repro::traj::noise::add_gaussian_noise;
use sts_repro::traj::sampling::sample_path_poisson;
use sts_repro::traj::Trajectory;
use sts_rng::Xoshiro256pp;

fn main() {
    let mut rng = Xoshiro256pp::seed_from_u64(2020);

    // A mall with 14 independent visitors.
    let cfg = mall::MallConfig {
        n_pedestrians: 14,
        seed: 2020,
        ..mall::MallConfig::default()
    };
    let workload = mall::generate(&cfg);
    let index_case = &workload.objects[0];

    // Plant two true contacts: companions walking with the index case
    // (1.5 m apart, 0.5 m jitter), observed by their own sporadic scans.
    let mut population: Vec<(String, Trajectory)> = Vec::new();
    for k in 0..2 {
        let path = companion_path(&index_case.path, 1.5, 0.5, &mut rng);
        let observed = sample_path_poisson(&path, cfg.mean_scan_interval, &mut rng);
        population.push((format!("contact-{k}"), observed));
    }
    for (i, obj) in workload.objects.iter().enumerate().skip(1) {
        population.push((format!("visitor-{i}"), obj.trajectory.clone()));
    }

    // Every observation carries ~2 m of WiFi positioning error.
    let sigma = 2.0;
    let index_traj = add_gaussian_noise(&index_case.trajectory, sigma, &mut rng);
    for (_, t) in &mut population {
        *t = add_gaussian_noise(t, sigma, &mut rng);
    }

    // STS over a 3 m grid (the paper's mall setting).
    let area = BoundingBox::new(Point::ORIGIN, Point::new(cfg.width, cfg.height));
    let grid = Grid::new(area.inflated(6.0), 3.0).expect("valid grid");
    let sts = Sts::new(
        StsConfig {
            noise_sigma: sigma,
            ..StsConfig::default()
        },
        grid,
    );

    // Rank the population by spatial-temporal overlap with the index
    // case.
    let mut scored: Vec<(&str, f64)> = population
        .iter()
        .map(|(name, t)| {
            let s = sts.similarity(&index_traj, t).unwrap_or(0.0);
            (name.as_str(), s)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));

    println!("Contact-tracing ranking for the index case:");
    for (rank, (name, score)) in scored.iter().enumerate() {
        let marker = if name.starts_with("contact") {
            " <== true contact"
        } else {
            ""
        };
        println!(
            "  #{:<2} {:<12} STS = {:.4}{}",
            rank + 1,
            name,
            score,
            marker
        );
    }

    // The two planted contacts must surface at the top.
    let top2: Vec<&str> = scored.iter().take(2).map(|(n, _)| *n).collect();
    assert!(
        top2.iter().all(|n| n.starts_with("contact")),
        "true contacts should rank first, got {top2:?}"
    );
    println!("=> both true contacts identified at ranks 1-2.");

    // For the top contact, estimate *how long* the exposure lasted from
    // the co-location profile.
    let index_prep = sts.prepare(&index_traj).expect(">= 2 points");
    let (top_name, _) = scored[0];
    let top_traj = &population
        .iter()
        .find(|(n, _)| n == top_name)
        .expect("ranked name exists")
        .1;
    let profile = sts.colocation_profile(&index_prep, &sts.prepare(top_traj).expect(">= 2 points"));
    let exposure = exposure_duration(&profile, 0.05);
    println!(
        "estimated exposure to {top_name}: {:.0} s of the index case's {:.0} s visit",
        exposure,
        index_traj.duration()
    );
    assert!(exposure > 0.0, "a true contact must have nonzero exposure");
}
