//! Observe a supervised similarity job end to end: structured tracing,
//! live progress from the metrics registry, and the job's telemetry
//! section.
//!
//! ```sh
//! # Plain run: progress lines + telemetry summary on stdout.
//! cargo run --release --example observe_job
//!
//! # Structured spans/events as JSONL on stderr:
//! STS_TRACE=jsonl cargo run --release --example observe_job 2>trace.jsonl
//!
//! # Or straight to a file:
//! STS_TRACE=/tmp/sts-trace.jsonl cargo run --release --example observe_job
//! ```
//!
//! Every span line carries `name`, `id`, `parent`, `thread`, `start_ns`
//! and `dur_ns`; stitch them by `parent` to recover the job tree
//! (`job.run` → `job.prepare` → `pool.run` → `pool.chunk` →
//! `checkpoint.save`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use sts_repro::core::{CheckpointConfig, JobConfig, Sts, StsConfig};
use sts_repro::geo::{BoundingBox, Grid, Point};
use sts_repro::obs;
use sts_repro::rng::{Rng, Xoshiro256pp};
use sts_repro::traj::{TrajPoint, Trajectory};

/// A seeded corpus of straight walkers with varied lanes and phases.
fn corpus(seed: u64, n: usize) -> Vec<Trajectory> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let y = rng.random_range(5.0..190.0);
            let phase = rng.random_range(0.0..20.0);
            let speed = rng.random_range(1.0..3.0);
            Trajectory::new(
                (0..6)
                    .map(|i| {
                        let t = phase + 10.0 * i as f64;
                        TrajPoint::from_xy(speed * t, y, t)
                    })
                    .collect(),
            )
            .unwrap()
        })
        .collect()
}

fn main() {
    // Honour STS_TRACE / STS_METRICS. With STS_TRACE=jsonl (or a file
    // path) every span and event goes out as one JSON line.
    let tracing = obs::init_from_env();
    if tracing {
        eprintln!("# tracing enabled via STS_TRACE");
    }

    let grid = Grid::new(
        BoundingBox::new(Point::ORIGIN, Point::new(400.0, 200.0)),
        6.0,
    )
    .unwrap();
    let sts = Sts::new(StsConfig::default(), grid);
    let queries = corpus(0x0B5E, 24);

    let ckpt = std::env::temp_dir().join(format!("sts-observe-job-{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let cfg = JobConfig {
        checkpoint: Some(CheckpointConfig {
            path: ckpt.clone(),
            flush_every_chunks: 4,
        }),
        chunk_pairs: 16,
        threads: 4,
        telemetry: true,
        ..JobConfig::default()
    };

    // Live progress straight from the lock-free registry: any thread
    // may read the same instruments the job is writing.
    let total = (queries.len() * queries.len()) as u64;
    let done = Arc::new(AtomicBool::new(false));
    let watcher = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let pairs = obs::metrics::counter("core.pairs.scored");
            let depth = obs::metrics::gauge("runtime.pool.queue_depth");
            let base = pairs.get();
            while !done.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(25));
                println!(
                    "progress: {}/{} pairs scored, queue depth {}",
                    pairs.get() - base,
                    total,
                    depth.get()
                );
            }
        })
    };

    let (matrix, report) = sts
        .similarity_matrix_supervised(&queries, &queries, &cfg)
        .expect("supervised job");
    done.store(true, Ordering::Release);
    watcher.join().unwrap();
    let _ = std::fs::remove_file(&ckpt);

    println!("\nreport: {report}");
    println!(
        "matrix: {}x{}, chunk wait/run means {:?}/{:?}",
        matrix.len(),
        matrix[0].len(),
        report.stats.mean_chunk_wait(),
        report.stats.mean_chunk_run(),
    );

    // The telemetry section is the registry delta over this job alone.
    if let Some(t) = &report.telemetry {
        println!("\n{t}; as JSONL:");
        print!("{}", t.metrics.to_jsonl_string());
    }
}
