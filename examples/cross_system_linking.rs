//! Cross-system trajectory linking — the paper's main evaluation task
//! (§VI-B): "an effective similarity measure should match correctly two
//! trajectories of the same user" observed by two different sensing
//! systems.
//!
//! We simulate a taxi fleet observed by (1) the dispatch GPS feed and
//! (2) a sparser, noisier roadside-sensor network, then link each
//! dispatch trajectory to its sensor-network counterpart with STS and
//! with CATS, reporting precision and mean rank for both.
//!
//! ```sh
//! cargo run --release --example cross_system_linking
//! ```

use sts_repro::baselines::Cats;
use sts_repro::core::{Sts, StsConfig};
use sts_repro::eval::matching::{matching_ranks, MatrixMeasure, StsMatrix};
use sts_repro::eval::metrics::{mean_rank, precision};
use sts_repro::geo::{BoundingBox, Grid, Point};
use sts_repro::traj::generators::taxi;
use sts_repro::traj::noise::add_gaussian_noise;
use sts_repro::traj::sampling::downsample_fraction;
use sts_repro::traj::{Dataset, MatchingPairs, MIN_EVAL_LEN};
use sts_rng::Xoshiro256pp;

fn main() {
    let mut rng = Xoshiro256pp::seed_from_u64(99);

    // 12 taxis, beaconing every 15 s (the Porto regime).
    let cfg = taxi::TaxiConfig {
        n_taxis: 12,
        seed: 99,
        ..taxi::TaxiConfig::default()
    };
    let dataset = taxi::generate(&cfg).dataset().filter_min_len(MIN_EVAL_LEN);
    println!("{} taxis with >= {MIN_EVAL_LEN} fixes", dataset.len());

    // System 1 / system 2: the Fig. 3 alternate split, then system 2 is
    // degraded — it keeps only 40 % of its observations and carries
    // 40 m of location error (a roadside sensor network).
    let pairs = MatchingPairs::from_dataset(&dataset);
    let pairs = pairs.transform(
        |gps| Some(gps.clone()),
        |sensor| {
            let sparse = downsample_fraction(sensor, 0.4, &mut rng);
            Some(add_gaussian_noise(&sparse, 40.0, &mut rng))
        },
    );

    // Measures: STS on the paper's 100 m taxi grid, CATS with
    // road-scale tolerances.
    let area = BoundingBox::new(Point::ORIGIN, Point::new(cfg.city_size, cfg.city_size));
    let grid = Grid::new(area.inflated(200.0), 100.0).expect("valid grid");
    let sts = StsMatrix(Sts::new(
        StsConfig {
            noise_sigma: 50.0,
            ..StsConfig::default()
        },
        grid,
    ));
    let cats = Cats::new(200.0, 90.0);

    for (name, measure) in [
        ("STS", &sts as &dyn MatrixMeasure),
        ("CATS", &cats as &dyn MatrixMeasure),
    ] {
        let ranks = matching_ranks(measure, &pairs);
        println!(
            "{name:<5} precision = {:.3}  mean rank = {:.2}",
            precision(&ranks),
            mean_rank(&ranks)
        );
    }

    let sts_ranks = matching_ranks(&sts, &pairs);
    assert!(
        precision(&sts_ranks) >= 0.5,
        "STS should link most taxis across systems"
    );
    println!("=> each dispatch trajectory linked to its sensor-network twin.");

    // Persist the degraded system-2 view so it can be inspected or
    // re-used (plain-text format of `sts_traj::io`).
    let out = std::env::temp_dir().join("sts_linking_system2.txt");
    let mut buf = Vec::new();
    sts_repro::traj::io::write_trajectories(&mut buf, &pairs.d2).expect("serialize");
    std::fs::write(&out, buf).expect("write file");
    println!("system-2 trajectories written to {}", out.display());
    let _ = Dataset::new(pairs.d2.clone()); // demonstrate dataset wrapping
}
