//! Companion detection — "spatial-temporal similarity measure is also
//! fundamental to companion detection for viral marketing, promotion
//! and advertising" (paper §I).
//!
//! A mall population contains hidden companion groups (people walking
//! together). We compute the full pairwise STS matrix and extract
//! companion pairs by thresholding, comparing against the planted
//! ground truth.
//!
//! ```sh
//! cargo run --release --example companion_detection
//! ```

use sts_repro::core::{Sts, StsConfig};
use sts_repro::geo::{BoundingBox, Grid, Point};
use sts_repro::traj::generators::{companion_path, mall};
use sts_repro::traj::sampling::sample_path_poisson;
use sts_repro::traj::Trajectory;
use sts_rng::Xoshiro256pp;

fn main() {
    let mut rng = Xoshiro256pp::seed_from_u64(77);
    let cfg = mall::MallConfig {
        n_pedestrians: 8,
        seed: 77,
        ..mall::MallConfig::default()
    };
    let workload = mall::generate(&cfg);

    // Population: the 8 independent pedestrians, plus one companion for
    // each of the first three (ground-truth pairs (0,8), (1,9), (2,10)).
    let mut population: Vec<Trajectory> = workload
        .objects
        .iter()
        .map(|o| o.trajectory.clone())
        .collect();
    let mut truth: Vec<(usize, usize)> = Vec::new();
    for k in 0..3 {
        let path = companion_path(&workload.objects[k].path, 1.2, 0.4, &mut rng);
        population.push(sample_path_poisson(&path, cfg.mean_scan_interval, &mut rng));
        truth.push((k, 8 + k));
    }

    let area = BoundingBox::new(Point::ORIGIN, Point::new(cfg.width, cfg.height));
    let grid = Grid::new(area.inflated(6.0), 3.0).expect("valid grid");
    let sts = Sts::new(
        StsConfig {
            noise_sigma: 3.0,
            ..StsConfig::default()
        },
        grid,
    );

    // Full pairwise similarity matrix (symmetric; computed once).
    let matrix = sts
        .similarity_matrix(&population, &population)
        .expect("all trajectories have >= 2 points");

    // Detect companions: pairs whose STS clears a threshold calibrated
    // from the population (mean + 2·std of off-diagonal scores).
    let mut off: Vec<f64> = Vec::new();
    for (i, row) in matrix.iter().enumerate() {
        off.extend(row.iter().skip(i + 1));
    }
    let mean = off.iter().sum::<f64>() / off.len() as f64;
    let std = (off.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / off.len() as f64).sqrt();
    let threshold = mean + 2.0 * std;
    println!("companion threshold: {threshold:.4} (mean {mean:.4} + 2 std {std:.4})");

    let mut detected: Vec<(usize, usize, f64)> = Vec::new();
    for (i, row) in matrix.iter().enumerate() {
        for (j, &s) in row.iter().enumerate().skip(i + 1) {
            if s > threshold {
                detected.push((i, j, s));
            }
        }
    }
    detected.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite"));

    println!("detected companion pairs:");
    for (i, j, s) in &detected {
        let is_true = truth.contains(&(*i, *j));
        println!(
            "  ({i:>2}, {j:>2}) STS = {s:.4}{}",
            if is_true { "  <== planted pair" } else { "" }
        );
    }
    let hits = truth
        .iter()
        .filter(|&&(a, b)| detected.iter().any(|&(i, j, _)| (i, j) == (a, b)))
        .count();
    println!("recovered {hits}/{} planted companion pairs", truth.len());
    assert!(hits >= 2, "most planted companions should be detected");
}
