#!/usr/bin/env bash
# Tier-1 gate for the STS reproduction. The workspace is hermetic
# (zero external crates), so everything here must pass with no network
# access — --offline makes any reintroduced external dependency fail
# loudly at resolution time.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --workspace --release --offline

echo "== test (offline) =="
cargo test --workspace -q --offline

# Explicit robustness gate: the chaos property suite (every fault
# injector, 100+ seeded cases each, through repair → prepare → STP →
# similarity under catch_unwind) and the byte-mangling fuzz of the
# lenient reader. Both also run inside the workspace tests above; the
# dedicated step keeps a regression here from hiding in the noise.
echo "== chaos (fault injection + lenient-reader fuzz) =="
cargo test -p sts-robust -q --offline --test chaos

echo "== format =="
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --check
else
    echo "rustfmt not installed; skipping format check"
fi

echo "== ci green =="
