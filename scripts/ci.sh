#!/usr/bin/env bash
# Tier-1 gate for the STS reproduction. The workspace is hermetic
# (zero external crates), so everything here must pass with no network
# access — --offline makes any reintroduced external dependency fail
# loudly at resolution time.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Runs a seeded suite; on failure, says how to replay it. Every seeded
# test in the workspace derives its cases from fixed seeds and embeds
# the failing seed in the assertion message, so the replay is exact.
run_seeded() {
    local label="$1"
    shift
    if ! "$@"; then
        echo "!! ${label} failed. Seeds are fixed and the failing seed is named in the assertion output above."
        echo "!! replay: $* -- --nocapture"
        exit 1
    fi
}

# Pulls every `*pairs_per_sec` extra out of a bench snapshot as
# "suite/metric value" lines (the extras are one-per-line JSON objects,
# so line-oriented awk is enough — no JSON parser in the image).
bench_rates() {
    awk '
        /"suite":/ { suite = $2; gsub(/[",]/, "", suite) }
        /"name": "[A-Za-z0-9_]*pairs_per_sec"/ {
            name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
            val = $0; sub(/.*"value": /, "", val); sub(/[,}].*/, "", val)
            print suite "/" name, val
        }
    ' "$1"
}

echo "== build (release, offline) =="
cargo build --workspace --release --offline

echo "== test (offline) =="
cargo test --workspace -q --offline

# Explicit robustness gate: the chaos property suite (every fault
# injector, 100+ seeded cases each, through repair → prepare → STP →
# similarity under catch_unwind) and the byte-mangling fuzz of the
# lenient reader. Both also run inside the workspace tests above; the
# dedicated step keeps a regression here from hiding in the noise.
echo "== chaos (fault injection + lenient-reader fuzz; seeds 0..128 per injector) =="
run_seeded "chaos suite" cargo test -p sts-robust -q --offline --test chaos

# Supervised batch runtime gate: budget/deadline semantics, the
# checkpoint → crash → resume round-trip (8 fixed seeds, byte-identical
# matrices) and the panic/slow-pair injection suite driving a real
# 64-trajectory job.
echo "== runtime (deadlines, cancellation, checkpoint/resume; fixed seeds) =="
run_seeded "runtime unit tests" cargo test -p sts-runtime -q --offline
run_seeded "job lifecycle suite" cargo test -p sts-core -q --offline --test job_lifecycle
run_seeded "supervised chaos suite" cargo test -p sts-robust -q --offline --test supervised_chaos

# Process-isolation gate: the sts-isolate supervisor units, the worker
# wire-protocol suite, and the crash suite — real worker processes
# aborted, wedged, SIGKILLed and garbled, with poison-pair attribution
# compared against the fault plan's prediction, across fixed seeds.
echo "== isolation (worker supervision + crash suite; fixed seeds) =="
run_seeded "isolate unit tests" cargo test -p sts-isolate -q --offline
run_seeded "isolation crash suite" cargo test -p sts-repro -q --offline --test isolation

# Out-of-core tiling gate: the disk-chaos suite (seeded torn writes,
# bit flips, ENOSPC, stale tmp debris through the injectable storage
# trait; byte-identical matrices and exact injection accounting across
# 8 seeds) and the tile crash suite — a real tiled job SIGKILLed
# mid-spill, resumed from the surviving tiles, byte-compared against an
# uninterrupted run. Runs after the workspace tests above so the debug
# sts-worker binary exists for tile-drive.
echo "== tiles (disk chaos + SIGKILL resume; fixed seeds) =="
run_seeded "tile chaos suite" cargo test -p sts-robust -q --offline --test tile_chaos
run_seeded "tile crash suite" cargo test -p sts-repro -q --offline --test tile_crash

# Sharded-execution gate: the network-chaos suite (seeded frame drops,
# delays, corruption, duplicates, disconnects and wedges through the
# injectable transport seam; byte-identical matrices and exact
# corruption accounting across 8 seeds) and the shard crash suite —
# real serve-tcp workers SIGKILLed mid-tile, tiles re-leased, the
# finished matrix byte-compared against an in-process run, plus the
# fleet-exhaustion → local-compute degradation path.
echo "== shard (network chaos + worker SIGKILL; fixed seeds) =="
run_seeded "network chaos suite" cargo test -p sts-robust -q --offline --test net_chaos
run_seeded "shard crash suite" cargo test -p sts-repro -q --offline --test shard_crash

# Streaming-service gate: the serve chaos suite (send-side network
# faults reconciled *exactly* against the server's ingest counters,
# full-duplex survival, disk faults split into silent/honest ledgers,
# byte-mangler fuzz of the listener) and the serve crash suite — the
# real sts-serve binary SIGKILLed at seed-staggered moments
# mid-ingest, restarted, resent above the durable horizon, and
# byte-compared against an uninterrupted run across 8 seeds.
echo "== serve (ingest chaos + SIGKILL recovery; fixed seeds) =="
run_seeded "serve chaos suite" cargo test -p sts-robust -q --offline --test serve_chaos
run_seeded "serve crash suite" cargo test -p sts-repro -q --offline --test serve_crash

# STP-cache equivalence gate: the differential suite proving the cached
# sparse hot path equals the uncached oracle — bit-exact matrices,
# top-k and crash/resume for exact mode, rank-preservation for lattice
# mode, plus the sts_rng::check property tests over distributions and
# visitation order. Runs after the workspace tests above so the debug
# sts-worker binary exists for the subprocess cases.
echo "== stp cache (differential equivalence + property tests; fixed seeds) =="
run_seeded "stp cache equivalence suite" cargo test -p sts-core -q --offline --test stp_cache_equiv

# Telemetry gate: the std-only observability crate (metrics registry,
# tracing layer, JSONL writers) plus the end-to-end telemetry and
# overhead-guard suites that drive a real supervised job with tracing
# on and assert the disabled paths stay cheap.
echo "== telemetry (sts-obs unit tests + end-to-end tracing/overhead) =="
run_seeded "obs unit tests" cargo test -p sts-obs -q --offline
run_seeded "telemetry suite" cargo test -p sts-core -q --offline --test telemetry
run_seeded "telemetry overhead guard" cargo test -p sts-core -q --offline --test telemetry_overhead

# Non-gating perf snapshot: quick-config timings for every suite plus
# registry-derived throughput/latency extras, written as BENCH_tier1.json
# for cross-commit diffing. Timings on shared CI hardware are noisy, so
# a failure here never fails the gate.
echo "== bench snapshot (non-gating) =="
if cargo run -p sts-bench --release --offline --bin perf -- --quick --json BENCH_tier1.json; then
    echo "bench snapshot written to BENCH_tier1.json"
else
    echo "bench snapshot failed (non-gating); continuing"
fi

# Non-gating cache-speedup snapshot: the stp_cache suite alone, written
# as BENCH_stp_cache.json — per-pair timings for uncached/exact/lattice
# matrices plus stp_evals_per_pair and speedup extras from registry
# deltas. Same noisy-hardware caveat as above: never fails the gate.
echo "== stp cache bench snapshot (non-gating) =="
if cargo run -p sts-bench --release --offline --bin perf -- --quick --json BENCH_stp_cache.json stp_cache; then
    echo "stp cache bench snapshot written to BENCH_stp_cache.json"
else
    echo "stp cache bench snapshot failed (non-gating); continuing"
fi

# Non-gating out-of-core snapshot: the tiles suite alone, written as
# BENCH_tiles.json — in-memory vs tiled vs tiled-top-k timings plus
# pairs_per_sec, tiles_spilled, max_resident_cells and peak_rss_bytes
# extras. Same noisy-hardware caveat: never fails the gate.
echo "== tiles bench snapshot (non-gating) =="
if cargo run -p sts-bench --release --offline --bin perf -- --quick --json BENCH_tiles.json tiles; then
    echo "tiles bench snapshot written to BENCH_tiles.json"
else
    echo "tiles bench snapshot failed (non-gating); continuing"
fi

# Non-gating sharded-execution snapshot: the shard suite alone, written
# as BENCH_shard.json — in-process tiled vs 1-worker vs 4-worker fleet
# timings plus pairs_per_sec and the coordinator's lease ledger
# (tiles_leased, leases_expired, tiles_local_fallback). Same
# noisy-hardware caveat: never fails the gate.
echo "== shard bench snapshot (non-gating) =="
if cargo run -p sts-bench --release --offline --bin perf -- --quick --json BENCH_shard.json shard; then
    echo "shard bench snapshot written to BENCH_shard.json"
else
    echo "shard bench snapshot failed (non-gating); continuing"
fi

# Non-gating streaming-service snapshot: the serve suite alone, written
# as BENCH_serve.json — ack'd-ingest / windowed-query / hello
# round-trip timings against a live server on loopback, plus
# ingest_records_per_sec, client-observed query_p50_ns / query_p99_ns,
# and the WAL recovery-replay time. Same noisy-hardware caveat: never
# fails the gate.
echo "== serve bench snapshot (non-gating) =="
if cargo run -p sts-bench --release --offline --bin perf -- --quick --json BENCH_serve.json serve; then
    echo "serve bench snapshot written to BENCH_serve.json"
else
    echo "serve bench snapshot failed (non-gating); continuing"
fi

# Non-gating bench regression: every `*pairs_per_sec` extra in the
# fresh BENCH_tier1.json / BENCH_shard.json snapshots is compared
# against the committed baselines (`git show HEAD:<snap>`), as a delta
# table. Throughput on shared CI hardware is noisy, so a regression
# beyond 25% only warns — this step never fails the gate.
echo "== bench regression vs committed baselines (non-gating) =="
for snap in BENCH_tier1.json BENCH_shard.json; do
    if ! baseline="$(git show "HEAD:${snap}" 2>/dev/null)"; then
        echo "no committed baseline for ${snap}; skipping"
        continue
    fi
    if [ ! -f "${snap}" ]; then
        echo "no fresh ${snap} (snapshot step above failed); skipping"
        continue
    fi
    echo "-- ${snap} --"
    printf '  %-40s %14s %14s %9s\n' metric baseline fresh delta
    join <(bench_rates <(printf '%s\n' "$baseline") | sort) \
        <(bench_rates "${snap}" | sort) |
        awk '{
            base = $2; fresh = $3
            delta = (base > 0) ? (fresh - base) / base * 100 : 0
            flag = (delta < -25) ? "  <-- WARNING: >25% regression" : ""
            printf "  %-40s %14.1f %14.1f %+8.1f%%%s\n", $1, base, fresh, delta, flag
        }'
done

echo "== format =="
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --check
else
    echo "rustfmt not installed; skipping format check"
fi

echo "== ci green =="
