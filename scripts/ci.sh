#!/usr/bin/env bash
# Tier-1 gate for the STS reproduction. The workspace is hermetic
# (zero external crates), so everything here must pass with no network
# access — --offline makes any reintroduced external dependency fail
# loudly at resolution time.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --workspace --release --offline

echo "== test (offline) =="
cargo test --workspace -q --offline

echo "== format =="
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --check
else
    echo "rustfmt not installed; skipping format check"
fi

echo "== ci green =="
